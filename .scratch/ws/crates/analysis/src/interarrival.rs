//! Request interarrival times.
//!
//! The vector-supercomputer studies the paper builds on characterized
//! I/O as "recurrent and predictable" from request interarrival
//! structure (Pasquale & Polyzos [12, 13]). This module computes
//! per-process interarrival gaps and the regularity metrics used to
//! make such claims: the coefficient of variation (CV ≈ 0 for
//! clockwork arrivals, ≈ 1 for Poisson, > 1 for bursty) and the lag-1
//! autocorrelation of successive gaps.

use serde::{Deserialize, Serialize};
use sioscope_sim::{Pid, Time};
use sioscope_trace::{IoEvent, TraceIndex};
use std::collections::BTreeMap;

/// Interarrival statistics for one process's request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interarrival {
    /// Number of gaps (requests − 1).
    pub gaps: usize,
    /// Mean gap in seconds.
    pub mean_s: f64,
    /// Coefficient of variation of the gaps.
    pub cv: f64,
    /// Lag-1 autocorrelation of the gaps (`None` with < 3 gaps or
    /// zero variance).
    pub lag1: Option<f64>,
}

/// Compute interarrival statistics over a sequence of start times.
pub fn of_starts(starts: &[Time]) -> Option<Interarrival> {
    if starts.len() < 2 {
        return None;
    }
    let mut sorted: Vec<Time> = starts.to_vec();
    sorted.sort_unstable();
    let gaps: Vec<f64> = sorted
        .windows(2)
        .map(|w| (w[1] - w[0]).as_secs_f64())
        .collect();
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let lag1 = if gaps.len() >= 3 && var > 0.0 {
        let cov: f64 = gaps
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1.0);
        Some(cov / var)
    } else {
        None
    };
    Some(Interarrival {
        gaps: gaps.len(),
        mean_s: mean,
        cv,
        lag1,
    })
}

/// Per-process interarrival statistics over a trace.
pub fn per_process(events: &[IoEvent]) -> BTreeMap<Pid, Interarrival> {
    let mut starts: BTreeMap<Pid, Vec<Time>> = BTreeMap::new();
    for e in events {
        starts.entry(e.pid).or_default().push(e.start);
    }
    starts
        .into_iter()
        .filter_map(|(pid, s)| of_starts(&s).map(|ia| (pid, ia)))
        .collect()
}

/// Per-process interarrival statistics from a [`TraceIndex`]: each
/// pid's start instants come straight off its postings list instead of
/// being regrouped from a scan. [`of_starts`] sorts its input, so the
/// statistics are bit-identical to [`per_process`].
pub fn per_process_indexed(index: &TraceIndex) -> BTreeMap<Pid, Interarrival> {
    index
        .pids()
        .filter_map(|pid| of_starts(&index.starts_of_pid(pid)).map(|ia| (pid, ia)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn too_few_requests_yield_none() {
        assert!(of_starts(&[]).is_none());
        assert!(of_starts(&[t(1)]).is_none());
    }

    #[test]
    fn clockwork_arrivals_have_zero_cv() {
        let starts: Vec<Time> = (0..20).map(|i| t(i * 100)).collect();
        let ia = of_starts(&starts).expect("enough gaps");
        assert_eq!(ia.gaps, 19);
        assert!((ia.mean_s - 0.1).abs() < 1e-9);
        assert!(ia.cv < 1e-9, "cv {}", ia.cv);
    }

    #[test]
    fn bursty_arrivals_have_high_cv() {
        // Bursts of five back-to-back requests, long silence between.
        let mut starts = Vec::new();
        for burst in 0..4u64 {
            for i in 0..5u64 {
                starts.push(t(burst * 10_000 + i));
            }
        }
        let ia = of_starts(&starts).expect("enough gaps");
        assert!(ia.cv > 1.5, "cv {}", ia.cv);
    }

    #[test]
    fn alternating_gaps_have_negative_lag1() {
        // Gaps alternate short/long: successive gaps anticorrelate.
        let mut starts = vec![t(0)];
        let mut now = 0u64;
        for i in 0..40 {
            now += if i % 2 == 0 { 10 } else { 1000 };
            starts.push(t(now));
        }
        let ia = of_starts(&starts).expect("enough gaps");
        let lag1 = ia.lag1.expect("variance present");
        assert!(lag1 < -0.5, "lag1 {lag1}");
    }

    #[test]
    fn unsorted_starts_are_handled() {
        let ia = of_starts(&[t(300), t(100), t(200)]).expect("three starts");
        assert_eq!(ia.gaps, 2);
        assert!((ia.mean_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn per_process_splits_streams() {
        use sioscope_pfs::{IoMode, OpKind};
        use sioscope_sim::FileId;
        let mut events = Vec::new();
        for pid in 0..2u32 {
            for i in 0..5u64 {
                events.push(IoEvent {
                    pid: Pid(pid),
                    file: FileId(0),
                    kind: OpKind::Read,
                    start: t(i * 50 + u64::from(pid)),
                    duration: t(1),
                    bytes: 1,
                    offset: 0,
                    mode: IoMode::MUnix,
                });
            }
        }
        let map = per_process(&events);
        assert_eq!(map.len(), 2);
        for ia in map.values() {
            assert_eq!(ia.gaps, 4);
        }
    }
}
