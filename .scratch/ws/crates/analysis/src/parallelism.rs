//! I/O parallelism — the second of the paper's three characterization
//! dimensions (§6).
//!
//! Two complementary views:
//!
//! * [`ConcurrencyProfile`] — how many processes have an I/O call
//!   outstanding at each instant (sweep-line over the trace's event
//!   intervals);
//! * [`NodeBalance`] — how evenly I/O time is spread across nodes.
//!   Both applications started with node zero administering nearly all
//!   I/O (§6.1) and ended with all-node parallel access (§6.2); these
//!   metrics make that evolution measurable.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::{Pid, Time};
use sioscope_trace::{IoEvent, TraceIndex};
use std::collections::BTreeMap;

/// Sweep-line concurrency profile of outstanding I/O calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyProfile {
    /// `(instant, outstanding-call count)` breakpoints, time-ordered;
    /// the count holds until the next breakpoint.
    pub steps: Vec<(Time, u32)>,
    /// Maximum concurrent outstanding calls.
    pub peak: u32,
    /// Time-weighted mean concurrency over the busy span (first start
    /// to last end).
    pub mean: f64,
    /// Time-weighted mean concurrency conditioned on at least one call
    /// being outstanding — "how parallel is the I/O when I/O happens".
    pub mean_active: f64,
}

impl ConcurrencyProfile {
    /// Build from a trace.
    pub fn build(events: &[IoEvent]) -> Self {
        let mut deltas: BTreeMap<Time, i64> = BTreeMap::new();
        for e in events {
            *deltas.entry(e.start).or_insert(0) += 1;
            *deltas.entry(e.end()).or_insert(0) -= 1;
        }
        Self::from_breakpoints(deltas.into_iter())
    }

    /// Build from a [`TraceIndex`] without revisiting the events: the
    /// index's start column and end-sorted column are merged into the
    /// same `(instant, delta)` breakpoint sequence the scan derives,
    /// one merged entry per distinct instant (including net-zero
    /// deltas from zero-duration events, which the scan also emits).
    /// The shared fold then performs the identical floating-point
    /// accumulation, so the profile is bit-identical to `build`.
    pub fn from_index(index: &TraceIndex) -> Self {
        let starts = index.starts();
        let ends = index.ends_sorted();
        let mut breaks: Vec<(Time, i64)> = Vec::with_capacity(starts.len() * 2);
        let (mut i, mut j) = (0usize, 0usize);
        while i < starts.len() || j < ends.len() {
            let t = if i < starts.len() && (j >= ends.len() || starts[i] <= ends[j]) {
                starts[i]
            } else {
                ends[j]
            };
            let mut d = 0i64;
            while i < starts.len() && starts[i] == t {
                d += 1;
                i += 1;
            }
            while j < ends.len() && ends[j] == t {
                d -= 1;
                j += 1;
            }
            breaks.push((t, d));
        }
        Self::from_breakpoints(breaks.into_iter())
    }

    /// The shared sweep over time-ordered `(instant, delta)`
    /// breakpoints — both constructors funnel through this fold so
    /// their floating-point results are identical to the bit.
    fn from_breakpoints(deltas: impl Iterator<Item = (Time, i64)>) -> Self {
        let mut steps = Vec::new();
        let mut level: i64 = 0;
        let mut peak = 0u32;
        let mut weighted = 0.0f64;
        let mut active = 0.0f64;
        let mut prev: Option<Time> = None;
        for (t, d) in deltas {
            if let Some(p) = prev {
                let dt = (t - p).as_secs_f64();
                weighted += level as f64 * dt;
                if level > 0 {
                    active += dt;
                }
            }
            level += d;
            debug_assert!(level >= 0, "negative outstanding count");
            peak = peak.max(level as u32);
            steps.push((t, level as u32));
            prev = Some(t);
        }
        let span = match (steps.first(), steps.last()) {
            (Some(&(s, _)), Some(&(e, _))) if e > s => (e - s).as_secs_f64(),
            _ => 0.0,
        };
        let mean = if span > 0.0 { weighted / span } else { 0.0 };
        let mean_active = if active > 0.0 { weighted / active } else { 0.0 };
        ConcurrencyProfile {
            steps,
            peak,
            mean,
            mean_active,
        }
    }

    /// Concurrency level at an instant (0 outside the busy span).
    pub fn at(&self, t: Time) -> u32 {
        match self.steps.partition_point(|&(s, _)| s <= t) {
            0 => 0,
            i => self.steps[i - 1].1,
        }
    }
}

/// Distribution of I/O time across nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBalance {
    /// Per-node total I/O time, indexed by pid.
    pub per_node: BTreeMap<u32, Time>,
    /// Total I/O time.
    pub total: Time,
}

impl NodeBalance {
    /// Build from a trace (all operations).
    pub fn build(events: &[IoEvent]) -> Self {
        Self::build_filtered(events, |_| true)
    }

    /// Build over the events a predicate selects — e.g. only writes,
    /// to measure the §6.1 "single node coordinates all writes"
    /// pattern.
    pub fn build_filtered(events: &[IoEvent], keep: impl Fn(&IoEvent) -> bool) -> Self {
        let mut per_node: BTreeMap<u32, Time> = BTreeMap::new();
        let mut total = Time::ZERO;
        for e in events.iter().filter(|e| keep(e)) {
            *per_node.entry(e.pid.0).or_insert(Time::ZERO) += e.duration;
            total += e.duration;
        }
        NodeBalance { per_node, total }
    }

    /// Build from a [`TraceIndex`]: one lookup per pid against the
    /// pre-aggregated per-pid totals.
    pub fn from_index(index: &TraceIndex) -> Self {
        let mut per_node = BTreeMap::new();
        let mut total = Time::ZERO;
        for pid in index.pids() {
            let d = index.pid_total_duration(pid);
            per_node.insert(pid.0, d);
            total += d;
        }
        NodeBalance { per_node, total }
    }

    /// Indexed equivalent of
    /// [`build_filtered`](NodeBalance::build_filtered) with a
    /// kind-equality predicate — the only filter the report paths use.
    pub fn of_kind(index: &TraceIndex, kind: OpKind) -> Self {
        let mut per_node = BTreeMap::new();
        let mut total = Time::ZERO;
        for pid in index.pids() {
            if let Some((_, d)) = index.pid_duration_of(pid, kind) {
                per_node.insert(pid.0, d);
                total += d;
            }
        }
        NodeBalance { per_node, total }
    }

    /// Share of total I/O time carried by one node (`[0, 1]`).
    pub fn share(&self, pid: Pid) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.per_node
            .get(&pid.0)
            .map(|t| t.as_secs_f64() / self.total.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Share of the busiest node.
    pub fn max_share(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.per_node
            .values()
            .map(|t| t.as_secs_f64() / self.total.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Number of nodes that performed any I/O.
    pub fn active_nodes(&self) -> usize {
        self.per_node.values().filter(|t| !t.is_zero()).count()
    }

    /// Gini coefficient of per-node I/O time (0 = perfectly even,
    /// → 1 = one node does everything).
    pub fn gini(&self) -> f64 {
        let mut xs: Vec<f64> = self.per_node.values().map(|t| t.as_secs_f64()).collect();
        if xs.len() < 2 {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        if sum == 0.0 {
            return 0.0;
        }
        let weighted: f64 = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted) / (n * sum) - (n + 1.0) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::{IoMode, OpKind};
    use sioscope_sim::FileId;

    fn ev(pid: u32, start_s: u64, dur_s: u64) -> IoEvent {
        IoEvent {
            pid: Pid(pid),
            file: FileId(0),
            kind: OpKind::Read,
            start: Time::from_secs(start_s),
            duration: Time::from_secs(dur_s),
            bytes: 1,
            offset: 0,
            mode: IoMode::MUnix,
        }
    }

    #[test]
    fn concurrency_counts_overlaps() {
        // [0,10), [5,15), [20,25): peak 2.
        let events = vec![ev(0, 0, 10), ev(1, 5, 10), ev(2, 20, 5)];
        let p = ConcurrencyProfile::build(&events);
        assert_eq!(p.peak, 2);
        assert_eq!(p.at(Time::from_secs(6)), 2);
        assert_eq!(p.at(Time::from_secs(12)), 1);
        assert_eq!(p.at(Time::from_secs(17)), 0);
        assert_eq!(p.at(Time::from_secs(22)), 1);
        // Weighted mean: (5*1 + 5*2 + 5*1 + 5*0 + 5*1)/25 = 1.0.
        assert!((p.mean - 1.0).abs() < 1e-9);
        // Conditioned on activity: 25/20 = 1.25.
        assert!((p.mean_active - 1.25).abs() < 1e-9);
    }

    #[test]
    fn empty_profile() {
        let p = ConcurrencyProfile::build(&[]);
        assert_eq!(p.peak, 0);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.mean_active, 0.0);
        assert_eq!(p.at(Time::from_secs(5)), 0);
    }

    #[test]
    fn node_balance_shares() {
        let events = vec![ev(0, 0, 9), ev(1, 0, 1)];
        let b = NodeBalance::build(&events);
        assert!((b.share(Pid(0)) - 0.9).abs() < 1e-9);
        assert!((b.share(Pid(1)) - 0.1).abs() < 1e-9);
        assert_eq!(b.share(Pid(9)), 0.0);
        assert!((b.max_share() - 0.9).abs() < 1e-9);
        assert_eq!(b.active_nodes(), 2);
    }

    #[test]
    fn filtered_balance_selects_events() {
        let mut events = vec![ev(0, 0, 10)];
        events.push(IoEvent {
            kind: sioscope_pfs::OpKind::Write,
            ..ev(1, 0, 10)
        });
        let writes_only =
            NodeBalance::build_filtered(&events, |e| e.kind == sioscope_pfs::OpKind::Write);
        assert_eq!(writes_only.share(Pid(1)), 1.0);
        assert_eq!(writes_only.share(Pid(0)), 0.0);
    }

    #[test]
    fn gini_extremes() {
        // One node does everything among 4 → high Gini.
        let skewed = vec![ev(0, 0, 100), ev(1, 0, 0), ev(2, 0, 0), ev(3, 0, 0)];
        let g_skewed = NodeBalance::build(&skewed).gini();
        // Perfectly even.
        let even = vec![ev(0, 0, 10), ev(1, 0, 10), ev(2, 0, 10), ev(3, 0, 10)];
        let g_even = NodeBalance::build(&even).gini();
        assert!(g_skewed > 0.7, "skewed gini {g_skewed}");
        assert!(g_even.abs() < 1e-9, "even gini {g_even}");
    }

    #[test]
    fn zero_duration_events_do_not_break_gini() {
        let b = NodeBalance::build(&[ev(0, 0, 0)]);
        assert_eq!(b.gini(), 0.0);
        assert_eq!(b.max_share(), 0.0);
        assert_eq!(b.active_nodes(), 0);
    }
}
