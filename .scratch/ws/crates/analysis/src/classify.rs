//! High-level I/O classification.
//!
//! Miller & Katz [9] first proposed classifying supercomputer I/O into
//! **compulsory**, **checkpoint**, and **data staging** operations;
//! the paper uses the same taxonomy throughout (§4: ESCAT's phases are
//! compulsory → staging → staging → compulsory; §5: PRISM's are
//! compulsory → checkpointing → compulsory). This module infers the
//! class of every file from its trace, so the classification can be
//! *checked* against the phase structure instead of assumed.
//!
//! Heuristics (per file, over the whole run):
//!
//! * read before ever being written → **compulsory input**;
//! * written and later read back within the run → **data staging**
//!   (scratch data, e.g. the ESCAT quadrature files);
//! * written in ≥3 well-separated bursts and never read →
//!   **checkpoint** (periodic snapshots, e.g. PRISM's statistics
//!   files);
//! * written and never read, without periodic structure →
//!   **compulsory output** (final results).

use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::{FileId, Time};
use sioscope_trace::IoEvent;
use std::collections::BTreeMap;

/// Miller–Katz I/O class of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoClass {
    /// Input that must be read to start the computation.
    CompulsoryInput,
    /// Results that must be written at the end.
    CompulsoryOutput,
    /// Scratch data written and re-read within the run (out-of-core
    /// staging).
    DataStaging,
    /// Periodic snapshot writes, never read back within the run.
    Checkpoint,
    /// No data operations observed.
    Untouched,
}

impl IoClass {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            IoClass::CompulsoryInput => "compulsory (input)",
            IoClass::CompulsoryOutput => "compulsory (output)",
            IoClass::DataStaging => "data staging",
            IoClass::Checkpoint => "checkpoint",
            IoClass::Untouched => "untouched",
        }
    }
}

/// Classification result for one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileClass {
    /// The file.
    pub file: FileId,
    /// Inferred class.
    pub class: IoClass,
    /// Bytes read from the file.
    pub bytes_read: u64,
    /// Bytes written to the file.
    pub bytes_written: u64,
    /// Client-observed time spent in the file's data operations.
    pub io_time: Time,
}

/// Classify one file. `burst_gap` is the minimum quiet period that
/// separates write bursts when testing for checkpoint periodicity.
pub fn classify_file(events: &[IoEvent], file: FileId, burst_gap: Time) -> FileClass {
    let mut bytes_read = 0;
    let mut bytes_written = 0;
    let mut io_time = Time::ZERO;
    let mut first_write: Option<Time> = None;
    let mut read_after_write = false;
    let mut write_points = Vec::new();
    let mut any_read = false;

    for e in events.iter().filter(|e| e.file == file && e.is_data()) {
        io_time += e.duration;
        match e.kind {
            OpKind::Read => {
                any_read = true;
                bytes_read += e.bytes;
                if first_write.is_some_and(|w| e.start >= w) {
                    read_after_write = true;
                }
            }
            OpKind::Write => {
                bytes_written += e.bytes;
                if first_write.is_none() {
                    first_write = Some(e.start);
                }
                write_points.push((e.start, e.bytes));
            }
            _ => {}
        }
    }

    let class = if bytes_read == 0 && bytes_written == 0 && !any_read {
        IoClass::Untouched
    } else if bytes_written == 0 {
        IoClass::CompulsoryInput
    } else if read_after_write {
        IoClass::DataStaging
    } else {
        let bursts = Timeline::new(write_points).burst_count(burst_gap);
        if bursts >= 3 {
            IoClass::Checkpoint
        } else {
            IoClass::CompulsoryOutput
        }
    };

    FileClass {
        file,
        class,
        bytes_read,
        bytes_written,
        io_time,
    }
}

/// Classify every file appearing in the trace.
pub fn classify_all(events: &[IoEvent], burst_gap: Time) -> Vec<FileClass> {
    let mut files: Vec<FileId> = events.iter().map(|e| e.file).collect();
    files.sort_unstable();
    files.dedup();
    files
        .into_iter()
        .map(|f| classify_file(events, f, burst_gap))
        .collect()
}

/// Aggregate `(bytes moved, I/O time)` per class.
pub fn class_totals(classes: &[FileClass]) -> BTreeMap<&'static str, (u64, Time)> {
    let mut out: BTreeMap<&'static str, (u64, Time)> = BTreeMap::new();
    for c in classes {
        let entry = out.entry(c.class.label()).or_insert((0, Time::ZERO));
        entry.0 += c.bytes_read + c.bytes_written;
        entry.1 += c.io_time;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_sim::Pid;

    fn ev(kind: OpKind, file: u32, start_s: u64, bytes: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(file),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_millis(1),
            bytes,
            offset: 0,
            mode: sioscope_pfs::IoMode::MUnix,
        }
    }

    #[test]
    fn input_only_file_is_compulsory_input() {
        let t = vec![ev(OpKind::Read, 0, 1, 100), ev(OpKind::Read, 0, 2, 100)];
        let c = classify_file(&t, FileId(0), Time::from_secs(10));
        assert_eq!(c.class, IoClass::CompulsoryInput);
        assert_eq!(c.bytes_read, 200);
        assert_eq!(c.bytes_written, 0);
    }

    #[test]
    fn write_then_read_is_staging() {
        let t = vec![
            ev(OpKind::Write, 0, 1, 100),
            ev(OpKind::Write, 0, 2, 100),
            ev(OpKind::Read, 0, 50, 200),
        ];
        let c = classify_file(&t, FileId(0), Time::from_secs(10));
        assert_eq!(c.class, IoClass::DataStaging);
    }

    #[test]
    fn read_then_write_is_not_staging() {
        // Reading first (input) and appending results later without
        // re-reading: treat as output (the write is the final state).
        let t = vec![ev(OpKind::Read, 0, 1, 10), ev(OpKind::Write, 0, 2, 10)];
        let c = classify_file(&t, FileId(0), Time::from_secs(10));
        assert_eq!(c.class, IoClass::CompulsoryOutput);
    }

    #[test]
    fn periodic_write_bursts_are_checkpoints() {
        let mut t = Vec::new();
        for burst in 0..5u64 {
            for i in 0..4 {
                t.push(ev(OpKind::Write, 0, burst * 100 + i, 1000));
            }
        }
        let c = classify_file(&t, FileId(0), Time::from_secs(50));
        assert_eq!(c.class, IoClass::Checkpoint);
    }

    #[test]
    fn single_final_write_burst_is_compulsory_output() {
        let t = vec![
            ev(OpKind::Write, 0, 100, 500),
            ev(OpKind::Write, 0, 101, 500),
        ];
        let c = classify_file(&t, FileId(0), Time::from_secs(50));
        assert_eq!(c.class, IoClass::CompulsoryOutput);
    }

    #[test]
    fn untouched_file() {
        let t = vec![ev(OpKind::Read, 1, 1, 10)];
        let c = classify_file(&t, FileId(0), Time::from_secs(10));
        assert_eq!(c.class, IoClass::Untouched);
        assert_eq!(c.io_time, Time::ZERO);
    }

    #[test]
    fn classify_all_covers_files_and_totals_sum() {
        let t = vec![
            ev(OpKind::Read, 0, 1, 100),
            ev(OpKind::Write, 1, 2, 50),
            ev(OpKind::Read, 1, 3, 50),
        ];
        let classes = classify_all(&t, Time::from_secs(10));
        assert_eq!(classes.len(), 2);
        let totals = class_totals(&classes);
        let bytes: u64 = totals.values().map(|&(b, _)| b).sum();
        assert_eq!(bytes, 100 + 50 + 50);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            IoClass::CompulsoryInput.label(),
            IoClass::CompulsoryOutput.label(),
            IoClass::DataStaging.label(),
            IoClass::Checkpoint.label(),
            IoClass::Untouched.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
