//! The paper's percentage tables.
//!
//! * [`IoTimeTable`] — "time of operation / duration of all I/O
//!   operations × 100" per operation kind: Tables 2 and 5.
//! * [`ExecTimeTable`] — "time of operation / total execution time ×
//!   100": Table 3.
//!
//! Both render as fixed-width text matching the paper's row order
//! (open, gopen, read, seek, write, iomode, flush, close), with "–"
//! for absent operations, and support multi-column (multi-version)
//! layouts.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Percentage of total I/O time per operation kind (Tables 2 / 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoTimeTable {
    /// Column label (version name).
    pub label: String,
    /// Percentage (0–100) per kind; absent kinds were never executed.
    pub percent: BTreeMap<OpKind, f64>,
    /// Total I/O time the percentages are relative to.
    pub total_io: Time,
}

impl IoTimeTable {
    /// Build from per-kind duration sums.
    pub fn from_durations(label: &str, durations: &BTreeMap<OpKind, Time>) -> Self {
        let total_io: Time = durations.values().copied().sum();
        let denom = total_io.as_secs_f64();
        let percent = durations
            .iter()
            .map(|(&k, &d)| {
                let p = if denom > 0.0 {
                    100.0 * d.as_secs_f64() / denom
                } else {
                    0.0
                };
                (k, p)
            })
            .collect();
        IoTimeTable {
            label: label.to_string(),
            percent,
            total_io,
        }
    }

    /// Percentage for one kind (0 if absent).
    pub fn pct(&self, kind: OpKind) -> f64 {
        self.percent.get(&kind).copied().unwrap_or(0.0)
    }

    /// The kind with the largest share, if any.
    pub fn dominant(&self) -> Option<OpKind> {
        self.percent
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN percentages"))
            .map(|(&k, _)| k)
    }

    /// Percentages sum to ~100 (or 0 for an empty table).
    pub fn is_consistent(&self) -> bool {
        let sum: f64 = self.percent.values().sum();
        self.percent.is_empty() || (sum - 100.0).abs() < 1e-6
    }
}

/// Percentage of total *execution* time per operation kind (Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecTimeTable {
    /// Column label.
    pub label: String,
    /// Percentage (0–100) of execution time per kind.
    pub percent: BTreeMap<OpKind, f64>,
    /// All-I/O percentage (the paper's "All I/O" row).
    pub all_io: f64,
    /// Total execution time.
    pub exec_time: Time,
}

impl ExecTimeTable {
    /// Build from per-kind duration sums and the run's execution time.
    pub fn from_durations(
        label: &str,
        durations: &BTreeMap<OpKind, Time>,
        exec_time: Time,
    ) -> Self {
        let denom = exec_time.as_secs_f64();
        let percent: BTreeMap<OpKind, f64> = durations
            .iter()
            .map(|(&k, &d)| {
                let p = if denom > 0.0 {
                    100.0 * d.as_secs_f64() / denom
                } else {
                    0.0
                };
                (k, p)
            })
            .collect();
        let all_io = percent.values().sum();
        ExecTimeTable {
            label: label.to_string(),
            percent,
            all_io,
            exec_time,
        }
    }

    /// Percentage for one kind (0 if absent).
    pub fn pct(&self, kind: OpKind) -> f64 {
        self.percent.get(&kind).copied().unwrap_or(0.0)
    }
}

/// Render several [`IoTimeTable`] columns side by side in the paper's
/// layout.
pub fn render_io_table(title: &str, columns: &[IoTimeTable]) -> String {
    render(
        title,
        columns.iter().map(|c| (&c.label, &c.percent)).collect(),
        None,
    )
}

/// Render several [`ExecTimeTable`] columns side by side, with the
/// "All I/O" summary row.
pub fn render_exec_table(title: &str, columns: &[ExecTimeTable]) -> String {
    let all_io: Vec<f64> = columns.iter().map(|c| c.all_io).collect();
    render(
        title,
        columns.iter().map(|c| (&c.label, &c.percent)).collect(),
        Some(all_io),
    )
}

fn render(
    title: &str,
    columns: Vec<(&String, &BTreeMap<OpKind, f64>)>,
    all_io: Option<Vec<f64>>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<12}", "Operation");
    for (label, _) in &columns {
        let _ = write!(out, "{label:>10}");
    }
    out.push('\n');
    let width = 12 + 10 * columns.len();
    let _ = writeln!(out, "{}", "-".repeat(width));
    for kind in OpKind::all() {
        // Skip rows no column ever executed.
        if !columns.iter().any(|(_, m)| m.contains_key(&kind)) {
            continue;
        }
        let _ = write!(out, "{:<12}", kind.label());
        for (_, m) in &columns {
            match m.get(&kind) {
                Some(p) => {
                    let _ = write!(out, "{p:>10.2}");
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        out.push('\n');
    }
    if let Some(all) = all_io {
        let _ = writeln!(out, "{}", "-".repeat(width));
        let _ = write!(out, "{:<12}", "All I/O");
        for p in all {
            let _ = write!(out, "{p:>10.2}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durations(pairs: &[(OpKind, u64)]) -> BTreeMap<OpKind, Time> {
        pairs
            .iter()
            .map(|&(k, ms)| (k, Time::from_millis(ms)))
            .collect()
    }

    #[test]
    fn io_table_percentages() {
        let d = durations(&[
            (OpKind::Open, 500),
            (OpKind::Read, 300),
            (OpKind::Write, 200),
        ]);
        let t = IoTimeTable::from_durations("A", &d);
        assert!((t.pct(OpKind::Open) - 50.0).abs() < 1e-9);
        assert!((t.pct(OpKind::Read) - 30.0).abs() < 1e-9);
        assert_eq!(t.pct(OpKind::Seek), 0.0);
        assert_eq!(t.dominant(), Some(OpKind::Open));
        assert!(t.is_consistent());
        assert_eq!(t.total_io, Time::from_millis(1000));
    }

    #[test]
    fn empty_io_table_is_consistent() {
        let t = IoTimeTable::from_durations("X", &BTreeMap::new());
        assert!(t.is_consistent());
        assert_eq!(t.dominant(), None);
    }

    #[test]
    fn exec_table_all_io_row() {
        let d = durations(&[(OpKind::Open, 100), (OpKind::Read, 100)]);
        let t = ExecTimeTable::from_durations("C", &d, Time::from_secs(10));
        assert!((t.pct(OpKind::Open) - 1.0).abs() < 1e-9);
        assert!((t.all_io - 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_marks_absent_ops_with_dash() {
        let a = IoTimeTable::from_durations("A", &durations(&[(OpKind::Open, 10)]));
        let b =
            IoTimeTable::from_durations("B", &durations(&[(OpKind::Open, 5), (OpKind::Gopen, 5)]));
        let text = render_io_table("Table 2", &[a, b]);
        assert!(text.contains("Table 2"));
        assert!(text.contains("open"));
        let gopen_line = text.lines().find(|l| l.starts_with("gopen")).unwrap();
        assert!(gopen_line.contains('-'), "A never gopens: {gopen_line}");
        assert!(!text.contains("seek"), "no column has seeks");
    }

    #[test]
    fn render_exec_includes_all_io() {
        let t = ExecTimeTable::from_durations(
            "C",
            &durations(&[(OpKind::Write, 73)]),
            Time::from_secs(10),
        );
        let text = render_exec_table("Table 3", &[t]);
        assert!(text.contains("All I/O"));
        assert!(text.contains("0.73"));
    }
}
