//! Log-binned histograms.
//!
//! Request-size distributions in parallel-I/O studies span six orders
//! of magnitude (the paper's CDF x-axes run 1 B – 1 MB on log scales);
//! power-of-two binning is the standard presentation.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A histogram over power-of-two bins: bin `i` covers
/// `[2^i, 2^(i+1))`, with a dedicated bin for zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    zero: u64,
    bins: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Build from samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut h = LogHistogram {
            zero: 0,
            bins: Vec::new(),
            total: 0,
        };
        for s in samples {
            h.add(s);
        }
        h
    }

    /// The request-size histogram of one operation kind, from a
    /// [`TraceIndex`](sioscope_trace::TraceIndex) posting list —
    /// binning commutes, so the result matches
    /// [`from_samples`](LogHistogram::from_samples) over a scan.
    pub fn of_kind(index: &sioscope_trace::TraceIndex, kind: sioscope_pfs::OpKind) -> Self {
        Self::from_samples(index.sizes_sorted_of(kind).iter().copied())
    }

    /// Add one sample.
    pub fn add(&mut self, value: u64) {
        self.total += 1;
        if value == 0 {
            self.zero += 1;
            return;
        }
        let bin = 63 - value.leading_zeros() as usize; // floor(log2)
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the zero bin.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Count in bin `i` (`[2^i, 2^(i+1))`).
    pub fn bin(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// The bin with the most samples, as `(lower_bound, count)`;
    /// `None` if only zeros or empty.
    pub fn mode_bin(&self) -> Option<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Occupied bins as `(lower_bound, count)`, ascending.
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    /// Render an ASCII bar chart (one row per occupied bin).
    pub fn render(&self, title: &str, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let max = self
            .bins
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.zero)
            .max(1);
        if self.zero > 0 {
            let len = (self.zero as usize * width) / max as usize;
            let _ = writeln!(out, "{:>10} |{} {}", 0, "#".repeat(len), self.zero);
        }
        for (lo, c) in self.occupied() {
            let len = (c as usize * width) / max as usize;
            let _ = writeln!(out, "{lo:>10} |{} {c}", "#".repeat(len));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_power_of_two() {
        let h = LogHistogram::from_samples([1, 2, 3, 4, 7, 8, 1024, 1025]);
        assert_eq!(h.bin(0), 1); // [1,2)
        assert_eq!(h.bin(1), 2); // [2,4): 2,3
        assert_eq!(h.bin(2), 2); // [4,8): 4,7
        assert_eq!(h.bin(3), 1); // [8,16): 8
        assert_eq!(h.bin(10), 2); // [1024,2048)
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn zero_has_its_own_bin() {
        let h = LogHistogram::from_samples([0, 0, 1]);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.bin(0), 1);
    }

    #[test]
    fn mode_bin_finds_the_peak() {
        let mut samples = vec![1024u64; 90];
        samples.extend([131072u64; 10]);
        let h = LogHistogram::from_samples(samples);
        assert_eq!(h.mode_bin(), Some((1024, 90)));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::from_samples([]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mode_bin(), None);
        assert!(h.occupied().is_empty());
    }

    #[test]
    fn render_shows_bounds_and_counts() {
        let h = LogHistogram::from_samples([0, 5, 5, 2048]);
        let text = h.render("sizes", 20);
        assert!(text.contains("sizes"));
        assert!(text.contains("2048"));
        assert!(text.lines().count() >= 4);
    }
}
