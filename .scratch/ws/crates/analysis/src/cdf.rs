//! Cumulative distribution functions.
//!
//! Figures 2 and 7 plot, against request size, both the fraction of
//! *requests* at or below that size and the fraction of *data* moved
//! by requests at or below that size. [`Cdf`] supports both weightings
//! from one sample set.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `u64` samples (request sizes, in the paper's
/// use).
///
/// ```
/// use sioscope_analysis::Cdf;
///
/// // 97 small requests + 3 large ones: most *requests* are small,
/// // most *data* moves in the large ones — the paper's signature.
/// let mut sizes = vec![1024u64; 97];
/// sizes.extend([131072; 3]);
/// let cdf = Cdf::from_samples(sizes);
/// assert!(cdf.fraction_leq(2048) > 0.96);
/// assert!(cdf.weight_fraction_leq(2048) < 0.21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted distinct sample values.
    values: Vec<u64>,
    /// Cumulative count at each value.
    cum_count: Vec<u64>,
    /// Cumulative weight (sum of values ≤ v) at each value.
    cum_weight: Vec<u128>,
    total_count: u64,
    total_weight: u128,
}

impl Cdf {
    /// Build from raw samples. Accepts any order; zero-size samples
    /// are kept (a zero-byte request is still a request).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Self::from_sorted(samples)
    }

    /// Build the request-size CDF for one operation kind straight from
    /// a [`TraceIndex`](sioscope_trace::TraceIndex), whose per-kind
    /// size column is kept pre-sorted — skipping the O(n log n) sort
    /// [`from_samples`](Cdf::from_samples) pays.
    pub fn of_kind(index: &sioscope_trace::TraceIndex, kind: sioscope_pfs::OpKind) -> Self {
        Self::from_sorted(index.sizes_sorted_of(kind).to_vec())
    }

    /// Build from samples already in ascending order.
    pub fn from_sorted(samples: Vec<u64>) -> Self {
        debug_assert!(samples.windows(2).all(|w| w[0] <= w[1]), "samples unsorted");
        let mut values = Vec::new();
        let mut cum_count = Vec::new();
        let mut cum_weight = Vec::new();
        let mut count = 0u64;
        let mut weight = 0u128;
        let mut i = 0;
        while i < samples.len() {
            let v = samples[i];
            while i < samples.len() && samples[i] == v {
                count += 1;
                weight += u128::from(v);
                i += 1;
            }
            values.push(v);
            cum_count.push(count);
            cum_weight.push(weight);
        }
        Cdf {
            values,
            cum_count,
            cum_weight,
            total_count: count,
            total_weight: weight,
        }
    }

    /// Number of samples.
    pub fn n(&self) -> u64 {
        self.total_count
    }

    /// Sum of all samples (total bytes moved).
    pub fn total_weight(&self) -> u128 {
        self.total_weight
    }

    /// `true` iff built from no samples.
    pub fn is_empty(&self) -> bool {
        self.total_count == 0
    }

    /// Fraction of samples ≤ `x` (in `[0, 1]`; zero for an empty CDF).
    pub fn fraction_leq(&self, x: u64) -> f64 {
        if self.total_count == 0 {
            return 0.0;
        }
        match self.values.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cum_count[i - 1] as f64 / self.total_count as f64,
        }
    }

    /// Fraction of total weight carried by samples ≤ `x` — the
    /// "fraction of data" curve of Figures 2 and 7.
    pub fn weight_fraction_leq(&self, x: u64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        match self.values.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cum_weight[i - 1] as f64 / self.total_weight as f64,
        }
    }

    /// The distinct sample values in ascending order.
    pub fn support(&self) -> &[u64] {
        &self.values
    }

    /// Smallest value `v` with `fraction_leq(v) >= q` (the
    /// q-quantile); `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total_count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total_count as f64).ceil().max(1.0) as u64;
        let i = self.cum_count.partition_point(|&c| c < target);
        self.values.get(i.min(self.values.len() - 1)).copied()
    }

    /// `(value, fraction_of_requests, fraction_of_data)` triples for
    /// every support point — the full series the paper's CDF plots
    /// draw.
    pub fn series(&self) -> Vec<(u64, f64, f64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                (
                    v,
                    self.cum_count[i] as f64 / self.total_count.max(1) as f64,
                    if self.total_weight == 0 {
                        0.0
                    } else {
                        self.cum_weight[i] as f64 / self.total_weight as f64
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_is_zero_everywhere() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_leq(100), 0.0);
        assert_eq!(c.weight_fraction_leq(100), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn count_fractions() {
        let c = Cdf::from_samples(vec![10, 20, 30, 40]);
        assert_eq!(c.n(), 4);
        assert_eq!(c.fraction_leq(5), 0.0);
        assert_eq!(c.fraction_leq(10), 0.25);
        assert_eq!(c.fraction_leq(25), 0.5);
        assert_eq!(c.fraction_leq(40), 1.0);
        assert_eq!(c.fraction_leq(1000), 1.0);
    }

    #[test]
    fn weight_fractions_favor_large_samples() {
        // The paper's signature: most requests small, most data large.
        // 97 requests of 1 KB + 3 requests of 128 KB.
        let mut samples = vec![1024u64; 97];
        samples.extend([131072u64; 3]);
        let c = Cdf::from_samples(samples);
        assert!(c.fraction_leq(2048) > 0.96);
        assert!(c.weight_fraction_leq(2048) < 0.21);
        assert!((c.weight_fraction_leq(131072) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_collapse_in_support() {
        let c = Cdf::from_samples(vec![5, 5, 5, 7]);
        assert_eq!(c.support(), &[5, 7]);
        assert_eq!(c.fraction_leq(5), 0.75);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::from_samples(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(c.quantile(0.5), Some(5));
        assert_eq!(c.quantile(0.0), Some(1));
        assert_eq!(c.quantile(1.0), Some(10));
        assert_eq!(c.quantile(0.91), Some(10));
    }

    #[test]
    fn series_is_monotone() {
        let c = Cdf::from_samples(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let s = c.series();
        for pair in s.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
            assert!(pair[0].2 <= pair[1].2);
        }
        let last = s.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12);
        assert!((last.2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sized_samples_count_but_weigh_nothing() {
        let c = Cdf::from_samples(vec![0, 0, 10]);
        assert_eq!(c.n(), 3);
        assert!((c.fraction_leq(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.weight_fraction_leq(0), 0.0);
    }
}
