//! Timeline scatter series — the `(execution time, request size)` and
//! `(execution time, seek duration)` plots of Figures 3, 4, 5, 8
//! and 9.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::Time;
use sioscope_trace::TraceIndex;

/// A scatter of `(time, value)` points in time order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    points: Vec<(Time, u64)>,
}

impl Timeline {
    /// Build from points (sorted by time internally).
    pub fn new(mut points: Vec<(Time, u64)>) -> Self {
        points.sort_by_key(|&(t, v)| (t, v));
        Timeline { points }
    }

    /// The `(start, bytes)` scatter of one operation kind, straight
    /// from a [`TraceIndex`] posting list.
    pub fn of_kind(index: &TraceIndex, kind: OpKind) -> Self {
        Timeline::new(index.timeline_of(kind))
    }

    /// The `(start, duration-in-nanoseconds)` scatter of one kind —
    /// the seek-duration plot of Figure 5 — from a [`TraceIndex`].
    pub fn of_durations(index: &TraceIndex, kind: OpKind) -> Self {
        Timeline::new(durations_to_points(&index.duration_timeline_of(kind)))
    }

    /// The points, time-ordered.
    pub fn points(&self) -> &[(Time, u64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point's time.
    pub fn start(&self) -> Option<Time> {
        self.points.first().map(|&(t, _)| t)
    }

    /// Last point's time.
    pub fn end(&self) -> Option<Time> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Span between first and last point.
    pub fn span(&self) -> Time {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => Time::ZERO,
        }
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Smallest nonzero value (for log-scale axis floors).
    pub fn min_nonzero(&self) -> Option<u64> {
        self.points.iter().map(|&(_, v)| v).filter(|&v| v > 0).min()
    }

    /// Points within `[t0, t1)`.
    pub fn window(&self, t0: Time, t1: Time) -> Timeline {
        Timeline::new(
            self.points
                .iter()
                .copied()
                .filter(|&(t, _)| t >= t0 && t < t1)
                .collect(),
        )
    }

    /// Reduce to at most `max_points` points by keeping, within each
    /// of `max_points` equal time buckets, the bucket's maximum-value
    /// point — preserving the visual envelope of the scatter.
    pub fn downsample(&self, max_points: usize) -> Timeline {
        if self.points.len() <= max_points || max_points == 0 {
            return self.clone();
        }
        let start = self.start().unwrap_or(Time::ZERO);
        let span = self.span().as_nanos().max(1);
        let mut buckets: Vec<Option<(Time, u64)>> = vec![None; max_points];
        for &(t, v) in &self.points {
            let idx = (((t - start).as_nanos() as u128 * max_points as u128) / (span as u128 + 1))
                as usize;
            let idx = idx.min(max_points - 1);
            match buckets[idx] {
                Some((_, best)) if best >= v => {}
                _ => buckets[idx] = Some((t, v)),
            }
        }
        Timeline::new(buckets.into_iter().flatten().collect())
    }

    /// Count of activity bursts: maximal groups of consecutive points
    /// separated by gaps of at least `gap`. Used to assert e.g. "the
    /// five checkpoints are clearly visible" (Fig. 9).
    pub fn burst_count(&self, gap: Time) -> usize {
        if self.points.is_empty() {
            return 0;
        }
        let mut bursts = 1;
        for pair in self.points.windows(2) {
            if pair[1].0 - pair[0].0 >= gap {
                bursts += 1;
            }
        }
        bursts
    }
}

/// Convert a duration-valued series (e.g. seek durations) to
/// nanosecond values for plotting.
pub fn durations_to_points(series: &[(Time, Time)]) -> Vec<(Time, u64)> {
    series.iter().map(|&(t, d)| (t, d.as_nanos())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn ordering_and_bounds() {
        let tl = Timeline::new(vec![(t(5), 10), (t(1), 20), (t(9), 5)]);
        assert_eq!(tl.start(), Some(t(1)));
        assert_eq!(tl.end(), Some(t(9)));
        assert_eq!(tl.span(), t(8));
        assert_eq!(tl.max_value(), 20);
        assert_eq!(tl.min_nonzero(), Some(5));
        assert_eq!(tl.len(), 3);
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::new(vec![]);
        assert!(tl.is_empty());
        assert_eq!(tl.span(), Time::ZERO);
        assert_eq!(tl.max_value(), 0);
        assert_eq!(tl.min_nonzero(), None);
        assert_eq!(tl.burst_count(t(1)), 0);
    }

    #[test]
    fn window_selects_half_open_range() {
        let tl = Timeline::new((0..10).map(|i| (t(i), i)).collect());
        let w = tl.window(t(3), t(6));
        assert_eq!(w.len(), 3);
        assert_eq!(w.start(), Some(t(3)));
        assert_eq!(w.end(), Some(t(5)));
    }

    #[test]
    fn downsample_keeps_envelope() {
        let points: Vec<(Time, u64)> = (0..1000).map(|i| (t(i), i % 97)).collect();
        let tl = Timeline::new(points);
        let ds = tl.downsample(50);
        assert!(ds.len() <= 50);
        // The overall max must survive downsampling.
        assert_eq!(ds.max_value(), tl.max_value());
        // Downsampling something already small is the identity.
        let small = Timeline::new(vec![(t(0), 1), (t(1), 2)]);
        assert_eq!(small.downsample(50).len(), 2);
    }

    #[test]
    fn burst_count_finds_checkpoints() {
        // Five bursts of writes separated by long gaps — Figure 9.
        let mut pts = Vec::new();
        for burst in 0..5u64 {
            let base = burst * 1000;
            for i in 0..20 {
                pts.push((t(base + i), 100));
            }
        }
        let tl = Timeline::new(pts);
        assert_eq!(tl.burst_count(t(100)), 5);
        assert_eq!(tl.burst_count(t(2000)), 1);
    }

    #[test]
    fn duration_series_conversion() {
        let series = vec![(t(1), Time::from_millis(5)), (t(2), Time::from_millis(7))];
        let pts = durations_to_points(&series);
        assert_eq!(pts[0].1, 5_000_000);
        assert_eq!(pts[1].1, 7_000_000);
    }
}
