//! # sioscope-analysis
//!
//! The data-analysis toolkit that turns sioscope traces into the
//! paper's tables and figures: cumulative distribution functions of
//! request sizes and transferred data (Figures 2 and 7), timeline
//! scatters of request sizes and durations (Figures 3–5, 8–9),
//! percentage-of-I/O-time tables (Tables 2 and 5),
//! percentage-of-execution-time tables (Table 3), and ASCII renderings
//! of all of them.
//!
//! Every pass has two entry points: the original scan over
//! `&[IoEvent]`, retained as the oracle, and an indexed variant
//! (`from_index` / `of_kind` / `*_indexed`) that answers from a
//! shared [`sioscope_trace::TraceIndex`] without revisiting the event
//! vector. The indexed variants are bit-identical to the scans;
//! property tests in `tests/proptest_indexed.rs` enforce this.

pub mod bandwidth;
pub mod cdf;
pub mod classify;
pub mod compare;
pub mod histogram;
pub mod interarrival;
pub mod modes;
pub mod parallelism;
pub mod phases;
pub mod plot;
pub mod stats;
pub mod table;
pub mod timeline;

pub use bandwidth::BandwidthSeries;
pub use cdf::Cdf;
pub use classify::{classify_all, classify_file, FileClass, IoClass};
pub use compare::{Evolution, OpDelta};
pub use histogram::LogHistogram;
pub use interarrival::Interarrival;
pub use modes::{ModeStats, ModeUsage};
pub use parallelism::{ConcurrencyProfile, NodeBalance};
pub use phases::{
    detect as detect_phases, detect_indexed as detect_phases_indexed, PhaseKind, PhaseSpan,
};
pub use stats::Summary;
pub use table::{ExecTimeTable, IoTimeTable};
pub use timeline::Timeline;
