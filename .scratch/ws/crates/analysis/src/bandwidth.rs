//! Time-resolved throughput and burstiness.
//!
//! The vector-supercomputer studies the paper builds on (Miller & Katz
//! [9], Pasquale & Polyzos [12, 13]) characterized scientific I/O as
//! "highly regular, cyclical, and bursty"; the paper's own Figures 3–5
//! and 8–9 are the temporal evidence for the Paragon. This module
//! computes the windowed-throughput series behind such plots plus the
//! burstiness metrics used to compare them.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::Time;
use sioscope_trace::{IoEvent, TraceIndex};

/// Windowed throughput series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthSeries {
    /// Window length.
    pub window: Time,
    /// Bytes completed per window, indexed by window number from t=0.
    pub bytes_per_window: Vec<u64>,
}

impl BandwidthSeries {
    /// Bucket every data event's bytes into the window containing its
    /// completion instant.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn build(events: &[IoEvent], window: Time) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let end = events
            .iter()
            .filter(|e| e.is_data())
            .map(|e| e.end())
            .fold(Time::ZERO, Time::max);
        let n = (end.as_nanos() / window.as_nanos() + 1) as usize;
        let mut bytes_per_window = vec![0u64; n.min(10_000_000)];
        for e in events.iter().filter(|e| e.is_data() && e.bytes > 0) {
            let idx = (e.end().as_nanos() / window.as_nanos()) as usize;
            if let Some(slot) = bytes_per_window.get_mut(idx) {
                *slot += e.bytes;
            }
        }
        BandwidthSeries {
            window,
            bytes_per_window,
        }
    }

    /// Build from a [`TraceIndex`] using the per-kind completion-order
    /// columns — no event scan. Identical to [`build`]
    /// (same series length, same u64 bucket sums): byte adds commute,
    /// and the zero-byte filter in the scan only skips no-op adds.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    ///
    /// [`build`]: BandwidthSeries::build
    pub fn from_index(index: &TraceIndex, window: Time) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let end = [OpKind::Read, OpKind::Write]
            .into_iter()
            .filter_map(|k| index.last_end_of(k))
            .fold(Time::ZERO, Time::max);
        let n = (end.as_nanos() / window.as_nanos() + 1) as usize;
        let mut bytes_per_window = vec![0u64; n.min(10_000_000)];
        for k in [OpKind::Read, OpKind::Write] {
            for (e, b) in index.end_bytes_of(k) {
                let idx = (e.as_nanos() / window.as_nanos()) as usize;
                if let Some(slot) = bytes_per_window.get_mut(idx) {
                    *slot += b;
                }
            }
        }
        BandwidthSeries {
            window,
            bytes_per_window,
        }
    }

    /// Throughput of window `i` in bytes/second.
    pub fn bps(&self, i: usize) -> f64 {
        self.bytes_per_window
            .get(i)
            .map(|&b| b as f64 / self.window.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Peak window throughput (bytes/s).
    pub fn peak_bps(&self) -> f64 {
        self.bytes_per_window
            .iter()
            .map(|&b| b as f64 / self.window.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Mean throughput over the whole series (bytes/s).
    pub fn mean_bps(&self) -> f64 {
        if self.bytes_per_window.is_empty() {
            return 0.0;
        }
        let total: u64 = self.bytes_per_window.iter().sum();
        total as f64 / (self.window.as_secs_f64() * self.bytes_per_window.len() as f64)
    }

    /// Peak-to-mean ratio — the classic burstiness indicator (1 =
    /// perfectly smooth; large = bursty).
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean_bps();
        if mean <= 0.0 {
            0.0
        } else {
            self.peak_bps() / mean
        }
    }

    /// Fraction of windows with any I/O at all — duty cycle of the
    /// I/O system.
    pub fn duty_cycle(&self) -> f64 {
        if self.bytes_per_window.is_empty() {
            return 0.0;
        }
        let active = self.bytes_per_window.iter().filter(|&&b| b > 0).count();
        active as f64 / self.bytes_per_window.len() as f64
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.bytes_per_window.len()
    }

    /// `true` iff the series has no windows.
    pub fn is_empty(&self) -> bool {
        self.bytes_per_window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::{IoMode, OpKind};
    use sioscope_sim::{FileId, Pid};

    fn ev(kind: OpKind, start_s: u64, bytes: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(0),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_millis(10),
            bytes,
            offset: 0,
            mode: IoMode::MUnix,
        }
    }

    #[test]
    fn buckets_by_completion_window() {
        let events = vec![
            ev(OpKind::Read, 0, 1000),
            ev(OpKind::Read, 0, 500),
            ev(OpKind::Write, 10, 2000),
        ];
        let s = BandwidthSeries::build(&events, Time::from_secs(5));
        assert_eq!(s.bytes_per_window[0], 1500);
        assert_eq!(s.bytes_per_window[2], 2000);
        assert!((s.bps(0) - 300.0).abs() < 1e-9);
        assert!((s.peak_bps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn control_ops_ignored() {
        let events = vec![ev(OpKind::Open, 0, 0), ev(OpKind::Seek, 1, 0)];
        let s = BandwidthSeries::build(&events, Time::from_secs(1));
        assert_eq!(s.bytes_per_window.iter().sum::<u64>(), 0);
        assert_eq!(s.duty_cycle(), 0.0);
    }

    #[test]
    fn burstiness_of_checkpoint_pattern() {
        // Five bursts of 1 MB separated by 100 s of silence: highly
        // bursty. A continuous stream: burstiness ~1.
        let mut bursty = Vec::new();
        for b in 0..5u64 {
            bursty.push(ev(OpKind::Write, b * 100, 1 << 20));
        }
        let s_bursty = BandwidthSeries::build(&bursty, Time::from_secs(10));
        let mut smooth = Vec::new();
        for t in 0..40u64 {
            smooth.push(ev(OpKind::Write, t * 10, 1 << 20));
        }
        let s_smooth = BandwidthSeries::build(&smooth, Time::from_secs(10));
        assert!(s_bursty.burstiness() > 3.0, "{}", s_bursty.burstiness());
        assert!(s_smooth.burstiness() < 1.5, "{}", s_smooth.burstiness());
        assert!(s_bursty.duty_cycle() < 0.2);
        assert!(s_smooth.duty_cycle() > 0.9);
    }

    #[test]
    fn empty_series() {
        let s = BandwidthSeries::build(&[], Time::from_secs(1));
        assert_eq!(s.len(), 1); // one empty window at t=0
        assert_eq!(s.mean_bps(), 0.0);
        assert_eq!(s.burstiness(), 0.0);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        BandwidthSeries::build(&[], Time::ZERO);
    }
}
