//! Scalar summary statistics over durations and sizes.

use serde::{Deserialize, Serialize};
use sioscope_sim::Time;

/// Five-number-ish summary of a set of durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: Time,
    /// Largest sample.
    pub max: Time,
    /// Arithmetic mean.
    pub mean: Time,
    /// Median (lower of the two middle samples for even counts).
    pub median: Time,
    /// 95th percentile.
    pub p95: Time,
    /// Sum of all samples.
    pub total: Time,
}

impl Summary {
    /// Compute over a set of durations; `None` if empty.
    pub fn of(samples: &[Time]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<Time> = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        let total: Time = sorted.iter().copied().sum();
        let idx = |q: f64| -> usize {
            ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)
        };
        Some(Summary {
            count,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: total / count,
            median: sorted[idx(0.5)],
            p95: sorted[idx(0.95)],
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(ms: &[u64]) -> Vec<Time> {
        ms.iter().map(|&m| Time::from_millis(m)).collect()
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&times(&[7])).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, s.max);
        assert_eq!(s.mean, Time::from_millis(7));
        assert_eq!(s.median, Time::from_millis(7));
        assert_eq!(s.total, Time::from_millis(7));
    }

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&times(&[1, 2, 3, 4, 100])).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Time::from_millis(1));
        assert_eq!(s.max, Time::from_millis(100));
        assert_eq!(s.median, Time::from_millis(3));
        assert_eq!(s.total, Time::from_millis(110));
        assert_eq!(s.mean, Time::from_millis(22));
    }

    #[test]
    fn p95_tracks_tail() {
        let mut samples = times(&[1; 0]);
        for i in 1..=100 {
            samples.push(Time::from_millis(i));
        }
        let s = Summary::of(&samples).unwrap();
        assert!(s.p95 >= Time::from_millis(90));
        assert!(s.p95 <= Time::from_millis(100));
    }

    #[test]
    fn unsorted_input_ok() {
        let s = Summary::of(&times(&[9, 1, 5])).unwrap();
        assert_eq!(s.min, Time::from_millis(1));
        assert_eq!(s.max, Time::from_millis(9));
        assert_eq!(s.median, Time::from_millis(5));
    }
}
