//! Automatic I/O-phase detection.
//!
//! The paper identifies each application's phases by inspection
//! (ESCAT: compulsory reads → staged writes → staged reads →
//! compulsory writes; PRISM: reads → checkpointed integration → final
//! writes). This module recovers that structure *from the trace*: I/O
//! events are clustered into phases separated by quiet gaps, and each
//! phase is labelled by its dominant operation direction.

use serde::{Deserialize, Serialize};
use sioscope_pfs::OpKind;
use sioscope_sim::Time;
use sioscope_trace::{IoEvent, TraceIndex};

/// Dominant direction of a detected phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Bytes read exceed bytes written.
    ReadDominant,
    /// Bytes written exceed bytes read.
    WriteDominant,
    /// Control operations only (opens, seeks, mode changes).
    ControlOnly,
}

/// One detected phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// First event start in the phase.
    pub start: Time,
    /// Last event end in the phase.
    pub end: Time,
    /// Events in the phase.
    pub events: usize,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Dominant direction.
    pub kind: PhaseKind,
}

impl PhaseSpan {
    /// Phase duration.
    pub fn span(&self) -> Time {
        self.end.saturating_sub(self.start)
    }
}

/// Cluster a (time-sorted) trace into phases separated by I/O gaps of
/// at least `gap`.
pub fn detect(events: &[IoEvent], gap: Time) -> Vec<PhaseSpan> {
    detect_iter(events.iter().copied(), gap)
}

/// Cluster an indexed trace into phases. The index's canonical order
/// is time-sorted, so this is [`detect`] over the properly ordered
/// stream — identical to running `detect` on a sorted trace even if
/// the original slice was not sorted.
pub fn detect_indexed(index: &TraceIndex, gap: Time) -> Vec<PhaseSpan> {
    detect_iter(index.iter(), gap)
}

/// The sequential clustering pass both entry points share.
fn detect_iter(events: impl Iterator<Item = IoEvent>, gap: Time) -> Vec<PhaseSpan> {
    let mut phases: Vec<PhaseSpan> = Vec::new();
    let mut current: Option<PhaseSpan> = None;
    for e in events {
        match current.as_mut() {
            Some(p) if e.start.saturating_sub(p.end) < gap => {
                p.end = p.end.max(e.end());
                p.events += 1;
                match e.kind {
                    OpKind::Read => p.bytes_read += e.bytes,
                    OpKind::Write => p.bytes_written += e.bytes,
                    _ => {}
                }
            }
            _ => {
                if let Some(mut done) = current.take() {
                    done.kind = classify(&done);
                    phases.push(done);
                }
                current = Some(PhaseSpan {
                    start: e.start,
                    end: e.end(),
                    events: 1,
                    bytes_read: if e.kind == OpKind::Read { e.bytes } else { 0 },
                    bytes_written: if e.kind == OpKind::Write { e.bytes } else { 0 },
                    kind: PhaseKind::ControlOnly,
                });
            }
        }
    }
    if let Some(mut done) = current.take() {
        done.kind = classify(&done);
        phases.push(done);
    }
    phases
}

fn classify(p: &PhaseSpan) -> PhaseKind {
    if p.bytes_read == 0 && p.bytes_written == 0 {
        PhaseKind::ControlOnly
    } else if p.bytes_read >= p.bytes_written {
        PhaseKind::ReadDominant
    } else {
        PhaseKind::WriteDominant
    }
}

/// Render detected phases as a table.
pub fn render(phases: &[PhaseSpan]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8}{:>12}{:>12}{:>10}{:>14}{:>14}  kind",
        "phase", "start", "end", "events", "read", "written"
    );
    for (i, p) in phases.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8}{:>11.1}s{:>11.1}s{:>10}{:>14}{:>14}  {:?}",
            i + 1,
            p.start.as_secs_f64(),
            p.end.as_secs_f64(),
            p.events,
            p.bytes_read,
            p.bytes_written,
            p.kind
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::IoMode;
    use sioscope_sim::{FileId, Pid};

    fn ev(kind: OpKind, start_s: u64, bytes: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(0),
            kind,
            start: Time::from_secs(start_s),
            duration: Time::from_millis(100),
            bytes,
            offset: 0,
            mode: IoMode::MUnix,
        }
    }

    #[test]
    fn gap_separates_phases() {
        // Read burst at t=0..2, write burst at t=100..102.
        let events = vec![
            ev(OpKind::Read, 0, 100),
            ev(OpKind::Read, 1, 100),
            ev(OpKind::Read, 2, 100),
            ev(OpKind::Write, 100, 500),
            ev(OpKind::Write, 101, 500),
        ];
        let phases = detect(&events, Time::from_secs(10));
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, PhaseKind::ReadDominant);
        assert_eq!(phases[0].events, 3);
        assert_eq!(phases[1].kind, PhaseKind::WriteDominant);
        assert_eq!(phases[1].bytes_written, 1000);
    }

    #[test]
    fn small_gaps_merge() {
        let events = vec![ev(OpKind::Read, 0, 1), ev(OpKind::Write, 5, 100)];
        let phases = detect(&events, Time::from_secs(60));
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].kind, PhaseKind::WriteDominant);
    }

    #[test]
    fn control_only_phase() {
        let events = vec![ev(OpKind::Open, 0, 0), ev(OpKind::Close, 1, 0)];
        let phases = detect(&events, Time::from_secs(10));
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].kind, PhaseKind::ControlOnly);
    }

    #[test]
    fn empty_trace_no_phases() {
        assert!(detect(&[], Time::from_secs(1)).is_empty());
    }

    #[test]
    fn spans_cover_their_events() {
        let events = vec![ev(OpKind::Read, 3, 1), ev(OpKind::Read, 4, 1)];
        let phases = detect(&events, Time::from_secs(10));
        assert_eq!(phases[0].start, Time::from_secs(3));
        assert!(phases[0].end >= Time::from_secs(4));
        assert!(phases[0].span() >= Time::from_secs(1));
    }

    #[test]
    fn render_lists_phases() {
        let events = vec![ev(OpKind::Read, 0, 10)];
        let text = render(&detect(&events, Time::from_secs(1)));
        assert!(text.contains("ReadDominant"));
    }
}
