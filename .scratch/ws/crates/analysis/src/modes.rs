//! I/O-by-access-mode aggregation — the third of the paper's three
//! characterization dimensions (§6: "I/O activity can be classified
//! across three dimensions: I/O request size, I/O parallelism, and I/O
//! access modes").

use serde::{Deserialize, Serialize};
use sioscope_pfs::IoMode;
use sioscope_sim::Time;
use sioscope_trace::IoEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate activity under one access mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeStats {
    /// Number of operations (data + control) executed under the mode.
    pub ops: u64,
    /// Bytes moved by data operations.
    pub bytes: u64,
    /// Total client-observed time.
    pub time: Time,
}

/// Per-mode aggregation over a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModeUsage {
    per_mode: BTreeMap<&'static str, ModeStats>,
}

impl ModeUsage {
    /// Aggregate a trace by access mode.
    pub fn build(events: &[IoEvent]) -> Self {
        let mut per_mode: BTreeMap<&'static str, ModeStats> = BTreeMap::new();
        for e in events {
            let s = per_mode.entry(e.mode.name()).or_default();
            s.ops += 1;
            s.bytes += e.bytes;
            s.time += e.duration;
        }
        ModeUsage { per_mode }
    }

    /// Aggregate from a [`TraceIndex`](sioscope_trace::TraceIndex).
    /// All three accumulations commute, so the result matches
    /// [`build`](ModeUsage::build) regardless of event order.
    pub fn from_index(index: &sioscope_trace::TraceIndex) -> Self {
        let mut per_mode: BTreeMap<&'static str, ModeStats> = BTreeMap::new();
        for e in index.iter() {
            let s = per_mode.entry(e.mode.name()).or_default();
            s.ops += 1;
            s.bytes += e.bytes;
            s.time += e.duration;
        }
        ModeUsage { per_mode }
    }

    /// Stats for one mode (zero if unused).
    pub fn get(&self, mode: IoMode) -> ModeStats {
        self.per_mode.get(mode.name()).copied().unwrap_or_default()
    }

    /// Modes actually used.
    pub fn used_modes(&self) -> Vec<&'static str> {
        self.per_mode.keys().copied().collect()
    }

    /// The mode carrying the most I/O time.
    pub fn dominant_by_time(&self) -> Option<&'static str> {
        self.per_mode
            .iter()
            .max_by_key(|(_, s)| s.time)
            .map(|(&m, _)| m)
    }

    /// The mode carrying the most bytes.
    pub fn dominant_by_bytes(&self) -> Option<&'static str> {
        self.per_mode
            .iter()
            .max_by_key(|(_, s)| s.bytes)
            .map(|(&m, _)| m)
    }

    /// Render as a fixed-width table.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<10}{:>10}{:>14}{:>14}",
            "mode", "ops", "bytes", "I/O time"
        );
        let _ = writeln!(out, "{}", "-".repeat(48));
        for (mode, s) in &self.per_mode {
            let _ = writeln!(
                out,
                "{:<10}{:>10}{:>14}{:>13.2}s",
                mode,
                s.ops,
                s.bytes,
                s.time.as_secs_f64()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::OpKind;
    use sioscope_sim::{FileId, Pid};

    fn ev(mode: IoMode, kind: OpKind, bytes: u64, dur_ms: u64) -> IoEvent {
        IoEvent {
            pid: Pid(0),
            file: FileId(0),
            kind,
            start: Time::ZERO,
            duration: Time::from_millis(dur_ms),
            bytes,
            offset: 0,
            mode,
        }
    }

    #[test]
    fn aggregates_by_mode() {
        let events = vec![
            ev(IoMode::MUnix, OpKind::Read, 100, 5),
            ev(IoMode::MUnix, OpKind::Open, 0, 20),
            ev(IoMode::MRecord, OpKind::Read, 131072, 3),
            ev(IoMode::MAsync, OpKind::Write, 1800, 1),
        ];
        let u = ModeUsage::build(&events);
        assert_eq!(u.get(IoMode::MUnix).ops, 2);
        assert_eq!(u.get(IoMode::MUnix).bytes, 100);
        assert_eq!(u.get(IoMode::MUnix).time, Time::from_millis(25));
        assert_eq!(u.get(IoMode::MRecord).bytes, 131072);
        assert_eq!(u.get(IoMode::MSync).ops, 0);
        assert_eq!(u.dominant_by_time(), Some("M_UNIX"));
        assert_eq!(u.dominant_by_bytes(), Some("M_RECORD"));
        assert_eq!(u.used_modes().len(), 3);
    }

    #[test]
    fn empty_trace() {
        let u = ModeUsage::build(&[]);
        assert!(u.used_modes().is_empty());
        assert_eq!(u.dominant_by_time(), None);
    }

    #[test]
    fn render_lists_modes() {
        let events = vec![ev(IoMode::MGlobal, OpKind::Read, 36, 1)];
        let text = ModeUsage::build(&events).render("Mode usage");
        assert!(text.contains("M_GLOBAL"));
        assert!(text.contains("Mode usage"));
    }
}
