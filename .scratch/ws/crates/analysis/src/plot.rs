//! ASCII renderings of the paper's figures.
//!
//! These produce terminal plots good enough to eyeball the shapes the
//! paper shows: log-y scatter plots for the request-size timelines
//! (Figures 3, 4, 8, 9), linear scatter for seek durations (Figure 5),
//! and step plots for the CDFs (Figures 2, 7).

use crate::cdf::Cdf;
use crate::timeline::Timeline;
use sioscope_sim::Time;
use std::fmt::Write as _;

/// Render a timeline as an ASCII scatter, `width`×`height` characters,
/// with a log10 y-axis (like the paper's read/write-size figures).
pub fn scatter_log(title: &str, tl: &Timeline, width: usize, height: usize) -> String {
    scatter(title, tl, width, height, true)
}

/// Render a timeline as an ASCII scatter with a linear y-axis (like
/// Figure 5's seek durations).
pub fn scatter_linear(title: &str, tl: &Timeline, width: usize, height: usize) -> String {
    scatter(title, tl, width, height, false)
}

fn scatter(title: &str, tl: &Timeline, width: usize, height: usize, log_y: bool) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if tl.is_empty() {
        let _ = writeln!(out, "  (no events)");
        return out;
    }
    let start = tl.start().expect("non-empty");
    let span = tl.span().as_nanos().max(1);
    let max_v = tl.max_value().max(1);
    let min_v = tl.min_nonzero().unwrap_or(1);
    let (y_lo, y_hi) = if log_y {
        (
            (min_v as f64).log10(),
            (max_v as f64).log10().max((min_v as f64).log10() + 1e-9),
        )
    } else {
        (0.0, max_v as f64)
    };
    let mut grid = vec![vec![' '; width]; height];
    for &(t, v) in tl.points() {
        let x = (((t - start).as_nanos() as u128 * (width as u128 - 1)) / span as u128) as usize;
        let yv = if log_y {
            if v == 0 {
                continue;
            }
            (v as f64).log10()
        } else {
            v as f64
        };
        let frac = if y_hi > y_lo {
            ((yv - y_lo) / (y_hi - y_lo)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
        grid[y.min(height - 1)][x.min(width - 1)] = '*';
    }
    let y_label = |row: usize| -> String {
        let frac = 1.0 - row as f64 / (height - 1) as f64;
        if log_y {
            let v = 10f64.powf(y_lo + frac * (y_hi - y_lo));
            format!("{:>9.0}", v)
        } else {
            format!("{:>9.0}", frac * y_hi)
        }
    };
    for (row, line) in grid.iter().enumerate() {
        let label = if row == 0 || row == height - 1 || row == height / 2 {
            y_label(row)
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(10), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}0s{}{}",
        " ".repeat(11),
        " ".repeat(width.saturating_sub(12)),
        format_secs(start + tl.span())
    );
    out
}

/// Render a CDF pair (fraction of requests / fraction of data) as an
/// ASCII step plot over a log-x size axis — Figures 2 and 7.
pub fn cdf_plot(title: &str, cdf: &Cdf, width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{title}   ('#' = fraction of requests, 'o' = fraction of data)"
    );
    if cdf.is_empty() {
        let _ = writeln!(out, "  (no samples)");
        return out;
    }
    let support = cdf.support();
    let lo = (*support.first().expect("non-empty")).max(1) as f64;
    let hi = (*support.last().expect("non-empty")).max(2) as f64;
    let (llo, lhi) = (lo.log10(), hi.log10().max(lo.log10() + 1e-9));
    let mut grid = vec![vec![' '; width]; height];
    for (col, x) in (0..width)
        .map(|c| {
            let x = 10f64.powf(llo + (c as f64 / (width - 1) as f64) * (lhi - llo));
            (c, x.round() as u64)
        })
        .collect::<Vec<_>>()
    {
        let fr = cdf.fraction_leq(x);
        let fd = cdf.weight_fraction_leq(x);
        let row_r = ((1.0 - fr) * (height - 1) as f64).round() as usize;
        let row_d = ((1.0 - fd) * (height - 1) as f64).round() as usize;
        grid[row_d.min(height - 1)][col] = 'o';
        grid[row_r.min(height - 1)][col] = '#'; // requests on top if equal
    }
    for (row, line) in grid.iter().enumerate() {
        let frac = 1.0 - row as f64 / (height - 1) as f64;
        let label = if row == 0 || row == height - 1 || row == height / 2 {
            format!("{frac:>6.2}")
        } else {
            " ".repeat(6)
        };
        let _ = writeln!(out, "{label} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(7), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}{}B{}{}B (log request size)",
        " ".repeat(8),
        support.first().expect("non-empty"),
        " ".repeat(width.saturating_sub(16)),
        support.last().expect("non-empty"),
    );
    out
}

/// Render a labelled bar chart of execution times — Figures 1 and 6.
pub fn bar_chart(title: &str, bars: &[(String, Time)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = bars
        .iter()
        .map(|(_, t)| t.as_nanos())
        .max()
        .unwrap_or(1)
        .max(1);
    for (label, t) in bars {
        let len = ((t.as_nanos() as u128 * width as u128) / max as u128) as usize;
        let _ = writeln!(
            out,
            "{label:>6} |{} {:.0}s",
            "#".repeat(len),
            t.as_secs_f64()
        );
    }
    out
}

fn format_secs(t: Time) -> String {
    format!("{:.0}s", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_points() {
        let tl = Timeline::new(vec![
            (Time::from_secs(0), 100),
            (Time::from_secs(50), 100_000),
            (Time::from_secs(100), 1_000),
        ]);
        let s = scatter_log("Fig 3", &tl, 40, 10);
        assert!(s.contains("Fig 3"));
        assert!(s.matches('*').count() >= 3 - 1); // points may share a cell
    }

    #[test]
    fn scatter_empty_series() {
        let s = scatter_log("Fig", &Timeline::new(vec![]), 40, 10);
        assert!(s.contains("no events"));
    }

    #[test]
    fn scatter_linear_mode() {
        let tl = Timeline::new(vec![(Time::from_secs(1), 5), (Time::from_secs(2), 10)]);
        let s = scatter_linear("Fig 5", &tl, 30, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn cdf_plot_shows_both_curves() {
        let mut samples = vec![1024u64; 90];
        samples.extend([131072u64; 10]);
        let c = Cdf::from_samples(samples);
        let s = cdf_plot("Fig 2a", &c, 50, 12);
        assert!(s.contains('#'));
        assert!(s.contains('o'));
        assert!(s.contains("131072"));
    }

    #[test]
    fn cdf_plot_empty() {
        let s = cdf_plot("Fig", &Cdf::from_samples(vec![]), 50, 12);
        assert!(s.contains("no samples"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let bars = vec![
            ("A".to_string(), Time::from_secs(6600)),
            ("C".to_string(), Time::from_secs(5400)),
        ];
        let s = bar_chart("Fig 1", &bars, 40);
        let a_len = s.lines().nth(1).unwrap().matches('#').count();
        let c_len = s.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(a_len, 40);
        assert!(c_len < a_len);
        assert!(s.contains("6600s"));
    }
}
