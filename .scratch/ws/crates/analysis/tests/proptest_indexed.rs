//! Property-based tests that every indexed analysis pass equals its
//! naive-scan oracle — exactly, including bit-identical floating-point
//! results where the pass produces floats. The indexed variants feed
//! the same accumulation code the same values in the same order, so
//! `==` (not approximate comparison) is the correct assertion.

use proptest::prelude::*;
use sioscope_analysis::{
    detect_phases, detect_phases_indexed, interarrival, BandwidthSeries, Cdf, ConcurrencyProfile,
    LogHistogram, ModeUsage, NodeBalance, Timeline,
};
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, Pid, Time};
use sioscope_trace::{IoEvent, TraceRecorder};

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Open),
        Just(OpKind::Gopen),
        Just(OpKind::Read),
        Just(OpKind::Seek),
        Just(OpKind::Write),
        Just(OpKind::Iomode),
        Just(OpKind::Flush),
        Just(OpKind::Close),
    ]
}

fn arb_mode() -> impl Strategy<Value = IoMode> {
    prop_oneof![
        Just(IoMode::MUnix),
        Just(IoMode::MRecord),
        Just(IoMode::MAsync),
        Just(IoMode::MGlobal),
        Just(IoMode::MSync),
        Just(IoMode::MLog),
    ]
}

/// Arbitrary events with frequent zero durations and shared instants,
/// the shapes that stress sweep-lines and degenerate intervals.
fn arb_event() -> impl Strategy<Value = IoEvent> {
    (
        0u32..8,
        0u32..4,
        arb_kind(),
        prop_oneof![Just(0u64), 0u64..1_000_000],
        prop_oneof![Just(0u64), 0u64..10_000],
        0u64..100_000,
        0u64..1_000_000,
        arb_mode(),
    )
        .prop_map(
            |(pid, file, kind, start, dur, bytes, offset, mode)| IoEvent {
                pid: Pid(pid),
                file: FileId(file),
                kind,
                start: Time::from_nanos(start),
                duration: Time::from_nanos(dur),
                bytes: if matches!(kind, OpKind::Read | OpKind::Write) {
                    bytes
                } else {
                    0
                },
                offset,
                mode,
            },
        )
}

fn recorder(events: &[IoEvent]) -> TraceRecorder {
    let mut t = TraceRecorder::new();
    for e in events {
        t.record(*e);
    }
    t
}

proptest! {
    /// Concurrency profiles are bit-identical: the merged breakpoint
    /// stream reproduces the scan's BTreeMap sweep exactly, including
    /// net-zero breakpoints from zero-duration events.
    #[test]
    fn concurrency_matches_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        prop_assert_eq!(
            ConcurrencyProfile::from_index(t.index()),
            ConcurrencyProfile::build(&events)
        );
    }

    /// Node balance (total and per-kind) equals the filtered scans.
    #[test]
    fn node_balance_matches_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        prop_assert_eq!(NodeBalance::from_index(t.index()), NodeBalance::build(&events));
        for k in [OpKind::Read, OpKind::Write, OpKind::Seek] {
            prop_assert_eq!(
                NodeBalance::of_kind(t.index(), k),
                NodeBalance::build_filtered(&events, |e| e.kind == k)
            );
        }
    }

    /// Bandwidth series from completion-ordered index columns equals
    /// the scan: same length, same per-window byte sums.
    #[test]
    fn bandwidth_matches_oracle(
        events in prop::collection::vec(arb_event(), 0..250),
        window_ns in 1u64..100_000,
    ) {
        let t = recorder(&events);
        let w = Time::from_nanos(window_ns);
        prop_assert_eq!(
            BandwidthSeries::from_index(t.index(), w),
            BandwidthSeries::build(&events, w)
        );
    }

    /// Request-size CDFs and histograms from the pre-sorted size
    /// columns equal the sort-then-collapse oracle.
    #[test]
    fn size_distributions_match_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        for k in [OpKind::Read, OpKind::Write] {
            let sizes: Vec<u64> = events.iter().filter(|e| e.kind == k).map(|e| e.bytes).collect();
            prop_assert_eq!(Cdf::of_kind(t.index(), k), Cdf::from_samples(sizes.clone()));
            prop_assert_eq!(
                LogHistogram::of_kind(t.index(), k),
                LogHistogram::from_samples(sizes)
            );
        }
    }

    /// Timeline scatters (size- and duration-valued) equal the scans.
    /// The index extracts in canonical order, so the oracle filters
    /// from a canonically sorted copy of the events.
    #[test]
    fn timelines_match_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| (e.start, e.pid, e.file, e.offset));
        for k in [OpKind::Read, OpKind::Write, OpKind::Seek] {
            let pairs: Vec<(Time, u64)> =
                sorted.iter().filter(|e| e.kind == k).map(|e| (e.start, e.bytes)).collect();
            prop_assert_eq!(Timeline::of_kind(t.index(), k), Timeline::new(pairs));
            let dpairs: Vec<(Time, u64)> = sorted
                .iter()
                .filter(|e| e.kind == k)
                .map(|e| (e.start, e.duration.as_nanos()))
                .collect();
            prop_assert_eq!(Timeline::of_durations(t.index(), k), Timeline::new(dpairs));
        }
    }

    /// Phase detection over the index's canonical order equals the
    /// scan over a canonically sorted trace.
    #[test]
    fn phases_match_oracle(
        events in prop::collection::vec(arb_event(), 0..250),
        gap_ns in 1u64..200_000,
    ) {
        let mut t = recorder(&events);
        t.sort();
        let gap = Time::from_nanos(gap_ns);
        prop_assert_eq!(
            detect_phases_indexed(t.index(), gap),
            detect_phases(t.events(), gap)
        );
    }

    /// Access-mode aggregation commutes: indexed equals scan.
    #[test]
    fn modes_match_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        prop_assert_eq!(ModeUsage::from_index(t.index()), ModeUsage::build(&events));
    }

    /// Per-process interarrival statistics from pid postings equal the
    /// regrouping scan, bit-identically.
    #[test]
    fn interarrival_matches_oracle(events in prop::collection::vec(arb_event(), 0..250)) {
        let t = recorder(&events);
        prop_assert_eq!(
            interarrival::per_process_indexed(t.index()),
            interarrival::per_process(&events)
        );
    }
}
