//! Property-based tests of the analysis toolkit.

use proptest::prelude::*;
use sioscope_analysis::stats::Summary;
use sioscope_analysis::{Cdf, Timeline};
use sioscope_sim::Time;

proptest! {
    /// CDF fractions are monotone, bounded by [0,1], and reach exactly
    /// 1 at the maximum sample.
    #[test]
    fn cdf_monotone_and_bounded(samples in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let max = *samples.iter().max().expect("non-empty");
        let cdf = Cdf::from_samples(samples.clone());
        prop_assert_eq!(cdf.n(), samples.len() as u64);
        let mut prev_r = 0.0;
        let mut prev_d = 0.0;
        for x in [0u64, 1, 10, 100, 1_000, 100_000, max, max + 1] {
            let r = cdf.fraction_leq(x);
            let d = cdf.weight_fraction_leq(x);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!(r + 1e-12 >= prev_r, "request CDF not monotone");
            prop_assert!(d + 1e-12 >= prev_d, "data CDF not monotone");
            prev_r = r;
            prev_d = d;
        }
        prop_assert!((cdf.fraction_leq(max) - 1.0).abs() < 1e-12);
        prop_assert!((cdf.weight_fraction_leq(max) - 1.0).abs() < 1e-12);
    }

    /// The q-quantile is a sample value and at least a fraction q of
    /// samples are <= it.
    #[test]
    fn cdf_quantile_correct(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let cdf = Cdf::from_samples(samples.clone());
        let v = cdf.quantile(q).expect("non-empty");
        prop_assert!(samples.contains(&v));
        prop_assert!(cdf.fraction_leq(v) + 1e-12 >= q);
    }

    /// The weight CDF equals the manual computation.
    #[test]
    fn cdf_weight_matches_manual(samples in prop::collection::vec(0u64..100_000, 1..100), x in 0u64..100_000) {
        let cdf = Cdf::from_samples(samples.clone());
        let total: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        let below: u128 = samples.iter().filter(|&&v| v <= x).map(|&v| u128::from(v)).sum();
        let expected = if total == 0 { 0.0 } else { below as f64 / total as f64 };
        prop_assert!((cdf.weight_fraction_leq(x) - expected).abs() < 1e-9);
    }

    /// Downsampling preserves the max value and the time bounds, and
    /// never invents points.
    #[test]
    fn timeline_downsample_envelope(
        points in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..500),
        budget in 1usize..100,
    ) {
        let tl = Timeline::new(points.iter().map(|&(t, v)| (Time::from_nanos(t), v)).collect());
        let ds = tl.downsample(budget);
        prop_assert!(ds.len() <= budget.max(tl.len().min(budget)));
        prop_assert_eq!(ds.max_value(), tl.max_value());
        prop_assert!(ds.start() >= tl.start());
        prop_assert!(ds.end() <= tl.end());
        for p in ds.points() {
            prop_assert!(tl.points().contains(p), "downsampling invented a point");
        }
    }

    /// Window selection returns exactly the points in range.
    #[test]
    fn timeline_window_exact(
        points in prop::collection::vec((0u64..1_000, 0u64..10), 0..200),
        lo in 0u64..1_000,
        span in 0u64..1_000,
    ) {
        let tl = Timeline::new(points.iter().map(|&(t, v)| (Time::from_nanos(t), v)).collect());
        let t0 = Time::from_nanos(lo);
        let t1 = Time::from_nanos(lo + span);
        let w = tl.window(t0, t1);
        let expected = tl.points().iter().filter(|&&(t, _)| t >= t0 && t < t1).count();
        prop_assert_eq!(w.len(), expected);
    }

    /// Summary statistics are ordered min <= median <= p95 <= max and
    /// the mean lies within [min, max]; total = count * mean within
    /// rounding.
    #[test]
    fn summary_orderings(samples in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let times: Vec<Time> = samples.iter().map(|&n| Time::from_nanos(n)).collect();
        let s = Summary::of(&times).expect("non-empty");
        prop_assert!(s.min <= s.median);
        prop_assert!(s.median <= s.p95);
        prop_assert!(s.p95 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        let expected_total: u64 = samples.iter().sum();
        prop_assert_eq!(s.total.as_nanos(), expected_total);
        prop_assert_eq!(s.count, samples.len() as u64);
    }
}
