//! Property-based tests of the discrete-event kernel.

use proptest::prelude::*;
use sioscope_sim::{Calendar, DetRng, EventQueue, Pid, RendezvousOutcome, RendezvousTable, Time};

proptest! {
    /// Events pop in nondecreasing time order, and equal-time events
    /// pop in insertion order.
    #[test]
    fn event_queue_orders_and_is_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut popped: Vec<(Time, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, e.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The clock equals the last popped event's time and never goes
    /// backwards, even with interleaved scheduling.
    #[test]
    fn event_queue_clock_monotone(
        seed_times in prop::collection::vec(0u64..1_000, 1..50),
        extra in prop::collection::vec(0u64..1_000, 0..50),
    ) {
        let mut q = EventQueue::new();
        for &t in &seed_times {
            q.schedule(Time::from_nanos(t), ());
        }
        let mut last = Time::ZERO;
        let mut extra_iter = extra.iter();
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
            prop_assert_eq!(q.now(), last);
            // Occasionally schedule a follow-up relative to now.
            if let Some(&d) = extra_iter.next() {
                q.schedule_after(Time::from_nanos(d), ());
            }
        }
    }

    /// Calendar reservations never overlap, start no earlier than the
    /// arrival, and total busy time equals the sum of service demands.
    #[test]
    fn calendar_reservations_disjoint_and_conserving(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut cal = Calendar::new();
        let mut sorted = reqs.clone();
        sorted.sort();
        let mut prev_finish = Time::ZERO;
        let mut service_sum = Time::ZERO;
        for (arrival, service) in sorted {
            let a = Time::from_nanos(arrival);
            let s = Time::from_nanos(service);
            let r = cal.reserve(a, s);
            prop_assert!(r.start >= a, "service before arrival");
            prop_assert!(r.start >= prev_finish, "overlapping reservations");
            prop_assert_eq!(r.finish - r.start, s);
            prev_finish = r.finish;
            service_sum += s;
        }
        prop_assert_eq!(cal.busy_time(), service_sum);
        prop_assert_eq!(cal.free_at(), prev_finish);
    }

    /// A rendezvous of n members completes exactly on the n-th
    /// arrival, releasing at the maximum arrival time.
    #[test]
    fn rendezvous_completes_on_last_arrival(
        arrivals in prop::collection::vec(0u64..1_000, 1..64)
    ) {
        let n = arrivals.len();
        let mut table = RendezvousTable::new();
        let mut max_t = Time::ZERO;
        for (i, &t) in arrivals.iter().enumerate() {
            let at = Time::from_nanos(t);
            max_t = max_t.max(at);
            match table.arrive(7, Pid(i as u32), at, n) {
                RendezvousOutcome::Waiting => prop_assert!(i + 1 < n),
                RendezvousOutcome::Complete { arrivals: got, release } => {
                    prop_assert_eq!(i + 1, n, "completed early");
                    prop_assert_eq!(got.len(), n);
                    prop_assert_eq!(release, max_t);
                }
            }
        }
        prop_assert_eq!(table.forming(), 0);
    }

    /// Deterministic RNG streams are reproducible and jitter stays in
    /// its band.
    #[test]
    fn rng_jitter_band(seed in any::<u64>(), base_ms in 1u64..10_000, frac in 0.0f64..0.9) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        let base = Time::from_millis(base_ms);
        for _ in 0..10 {
            let ja = a.jitter(base, frac);
            let jb = b.jitter(base, frac);
            prop_assert_eq!(ja, jb);
            let lo = base.as_secs_f64() * (1.0 - frac) - 1e-9;
            let hi = base.as_secs_f64() * (1.0 + frac) + 1e-9;
            prop_assert!(ja.as_secs_f64() >= lo && ja.as_secs_f64() <= hi);
        }
    }

    /// Time arithmetic: scale by reciprocal factors round-trips within
    /// rounding error.
    #[test]
    fn time_scale_round_trip(ns in 1u64..1_000_000_000_000, factor in 0.01f64..100.0) {
        let t = Time::from_nanos(ns);
        let scaled = t.scale(factor);
        let back = scaled.scale(1.0 / factor);
        let err = back.as_nanos().abs_diff(ns);
        // Two roundings at most: bounded relative + absolute error.
        prop_assert!(
            err <= 2 + (ns as f64 * 1e-9) as u64 + (1.0 / factor).ceil() as u64,
            "ns={ns} factor={factor} err={err}"
        );
    }
}
