//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for
//! the same instant pop in the order they were pushed. This stability
//! is what makes whole-machine simulations bit-for-bit reproducible
//! regardless of how workload generators interleave their scheduling
//! calls.
//!
//! Internally the queue is an *indexed* binary min-heap: the heap
//! array holds only a packed `(time, seq)` key — a single `u128` whose
//! ordering is exactly the lexicographic `(time, seq)` order — plus a
//! slot index into a payload arena. Sift operations therefore compare
//! one integer and move 24 bytes regardless of the payload type, and
//! payloads themselves never move until they are popped. Freed arena
//! slots are recycled through a free list, so a simulation's steady
//! state allocates nothing per event.

use crate::time::Time;

/// An event drawn from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub time: Time,
    /// Monotone insertion sequence number (unique per queue).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

/// One heap node: the packed sort key and the arena slot of the
/// payload.
#[derive(Clone, Copy)]
struct HeapEntry {
    /// `(time << 64) | seq`: `u128` comparison *is* the `(time, seq)`
    /// lexicographic order, because both halves are unsigned and seq
    /// occupies the low bits.
    key: u128,
    slot: u32,
}

#[inline]
fn pack(time: Time, seq: u64) -> u128 {
    (u128::from(time.as_nanos()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> Time {
    Time::from_nanos((key >> 64) as u64)
}

#[inline]
fn unpack_seq(key: u128) -> u64 {
    key as u64
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use sioscope_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_secs(2), "later");
/// q.schedule(Time::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.now(), Time::from_secs(1));
/// ```
///
/// The queue tracks the simulation clock: [`EventQueue::now`] is the
/// timestamp of the most recently popped event. Scheduling an event in
/// the past is a logic error and panics in debug builds; in release
/// builds the event is clamped to `now` so a slightly-stale cost model
/// cannot corrupt causality.
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    arena: Vec<Option<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            arena: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Current simulation clock (time of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` to fire at `time`. Returns the sequence
    /// number, usable as a stable event identity.
    pub fn schedule(&mut self, time: Time, payload: E) -> u64 {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} before current clock {now}",
            now = self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.arena[slot as usize] = Some(payload);
                slot
            }
            None => {
                assert!(self.arena.len() < u32::MAX as usize, "event arena overflow");
                self.arena.push(Some(payload));
                (self.arena.len() - 1) as u32
            }
        };
        self.heap.push(HeapEntry {
            key: pack(time, seq),
            slot,
        });
        self.sift_up(self.heap.len() - 1);
        seq
    }

    /// Schedule `payload` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: Time, payload: E) -> u64 {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Pop the earliest event and advance the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.heap.is_empty() {
            return None;
        }
        let root = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let time = unpack_time(root.key);
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.popped += 1;
        let payload = self.arena[root.slot as usize]
            .take()
            .expect("heap entry points at an occupied slot");
        self.free.push(root.slot);
        Some(ScheduledEvent {
            time,
            seq: unpack_seq(root.key),
            payload,
        })
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| unpack_time(e.key))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key >= self.heap[parent].key {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < n && self.heap[right].key < self.heap[left].key {
                smallest = right;
            }
            if self.heap[smallest].key >= self.heap[i].key {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(3), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(5), ());
        q.schedule(Time::from_secs(2), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(5));
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), "first");
        q.pop();
        q.schedule_after(Time::from_secs(5), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.time, Time::from_secs(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(4)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                q.schedule(Time::from_secs(round * 10 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // Steady-state churn reuses the original eight slots instead
        // of growing the arena.
        assert!(q.arena.len() <= 8, "arena grew to {}", q.arena.len());
        assert_eq!(q.popped(), 80);
    }

    #[test]
    fn interleaved_push_pop_matches_reference_order() {
        // Deterministic pseudorandom interleaving checked against a
        // sort of the same (time, seq) pairs.
        let mut q = EventQueue::new();
        let mut state = 0x9E37_79B9u64;
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut expected: Vec<(u64, u64)> = Vec::new();
        let mut got: Vec<(u64, u64)> = Vec::new();
        for _ in 0..500 {
            let n_push = step() % 4;
            for _ in 0..n_push {
                let t = q.now() + Time::from_nanos(step() % 1000);
                let seq = q.schedule(t, ());
                expected.push((t.as_nanos(), seq));
            }
            if step() % 3 == 0 {
                if let Some(e) = q.pop() {
                    got.push((e.time.as_nanos(), e.seq));
                }
            }
        }
        while let Some(e) = q.pop() {
            got.push((e.time.as_nanos(), e.seq));
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before current clock")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }
}
