//! Time-indexed disturbance windows.
//!
//! Fault injection needs to answer "what multiplicative slowdown is in
//! force at instant `t`?" for resources whose calendars are reserved
//! analytically (possibly into the simulated future). A
//! [`PiecewiseFactor`] is the kernel-level primitive for that: a set of
//! half-open windows `[start, end)` each carrying a factor, queryable
//! at any instant. Overlapping windows compose multiplicatively, so two
//! simultaneous 2× slowdowns yield a 4× slowdown — the same convention
//! queueing models use for independent service-rate degradations.
//!
//! The type is policy-free: it neither knows what a "fault" is nor who
//! owns the resource. The `sioscope-faults` crate builds these from
//! declarative fault schedules.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A set of factor-carrying windows over simulated time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PiecewiseFactor {
    /// `(start, end, factor)` windows; `end` is exclusive. Kept in
    /// insertion order — queries scan, which is exact and fast for the
    /// handful of windows a fault schedule produces.
    windows: Vec<(Time, Time, f64)>,
    /// Cached `[min start, max end)` envelope of all windows: queries
    /// outside it return 1.0 without touching the window list, which
    /// is the common case for a simulation that spends most of its
    /// clock outside fault windows. Purely derived — rebuilt on push,
    /// skipped by serde (a deserialized timeline simply scans until
    /// the next push), and excluded from equality.
    #[serde(skip)]
    envelope: Option<(Time, Time)>,
}

impl PartialEq for PiecewiseFactor {
    fn eq(&self, other: &Self) -> bool {
        self.windows == other.windows
    }
}

impl PiecewiseFactor {
    /// The identity timeline: factor 1 everywhere.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Add a window `[start, end)` with the given factor. Windows with
    /// `end <= start` or a non-finite / non-positive factor are
    /// ignored rather than poisoning every query.
    pub fn push_window(&mut self, start: Time, end: Time, factor: f64) {
        if end <= start || !factor.is_finite() || factor <= 0.0 {
            return;
        }
        self.envelope = match self.envelope {
            Some((lo, hi)) => Some((lo.min(start), hi.max(end))),
            None if self.windows.is_empty() => Some((start, end)),
            // Windows predate the cache (deserialized timeline):
            // leave it cold rather than invent a wrong envelope.
            None => None,
        };
        self.windows.push((start, end, factor));
    }

    /// The combined factor in force at instant `t` (product of all
    /// windows containing `t`); `1.0` when none do.
    pub fn at(&self, t: Time) -> f64 {
        if let Some((lo, hi)) = self.envelope {
            if t < lo || t >= hi {
                return 1.0;
            }
        }
        let mut f = 1.0;
        for &(start, end, factor) in &self.windows {
            if t >= start && t < end {
                f *= factor;
            }
        }
        f
    }

    /// `true` iff no window was recorded — the timeline is the
    /// constant function 1 and callers may skip it entirely.
    pub fn is_identity(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` iff no windows are recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Every instant at which the combined factor may change (window
    /// starts and ends), unsorted and possibly duplicated.
    pub fn transitions(&self) -> impl Iterator<Item = Time> + '_ {
        self.windows
            .iter()
            .flat_map(|&(start, end, _)| [start, end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_everywhere_when_empty() {
        let p = PiecewiseFactor::identity();
        assert!(p.is_identity());
        assert_eq!(p.at(Time::ZERO), 1.0);
        assert_eq!(p.at(Time::from_secs(100)), 1.0);
    }

    #[test]
    fn single_window_is_half_open() {
        let mut p = PiecewiseFactor::identity();
        p.push_window(Time::from_secs(10), Time::from_secs(20), 2.0);
        assert_eq!(p.at(Time::from_secs(9)), 1.0);
        assert_eq!(p.at(Time::from_secs(10)), 2.0);
        assert_eq!(p.at(Time::from_secs(19)), 2.0);
        assert_eq!(p.at(Time::from_secs(20)), 1.0);
        assert!(!p.is_identity());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn overlapping_windows_multiply() {
        let mut p = PiecewiseFactor::identity();
        p.push_window(Time::from_secs(0), Time::from_secs(10), 2.0);
        p.push_window(Time::from_secs(5), Time::from_secs(15), 3.0);
        assert_eq!(p.at(Time::from_secs(2)), 2.0);
        assert_eq!(p.at(Time::from_secs(7)), 6.0);
        assert_eq!(p.at(Time::from_secs(12)), 3.0);
    }

    #[test]
    fn degenerate_windows_are_ignored() {
        let mut p = PiecewiseFactor::identity();
        p.push_window(Time::from_secs(5), Time::from_secs(5), 2.0);
        p.push_window(Time::from_secs(9), Time::from_secs(3), 2.0);
        p.push_window(Time::from_secs(0), Time::from_secs(10), f64::NAN);
        p.push_window(Time::from_secs(0), Time::from_secs(10), 0.0);
        assert!(p.is_identity());
    }

    #[test]
    fn envelope_early_out_agrees_with_full_scan() {
        let mut p = PiecewiseFactor::identity();
        p.push_window(Time::from_secs(10), Time::from_secs(20), 2.0);
        p.push_window(Time::from_secs(30), Time::from_secs(40), 3.0);
        // Outside the envelope (before 10, at/after 40) and inside
        // the gap between windows — all must agree with a naive scan.
        for s in [0, 5, 9, 10, 15, 20, 25, 29, 35, 39, 40, 100] {
            let t = Time::from_secs(s);
            let naive = if (10..20).contains(&s) {
                2.0
            } else if (30..40).contains(&s) {
                3.0
            } else {
                1.0
            };
            assert_eq!(p.at(t), naive, "at {s}s");
        }
    }

    #[test]
    fn equality_ignores_the_cached_envelope() {
        let mut a = PiecewiseFactor::identity();
        a.push_window(Time::from_secs(1), Time::from_secs(2), 2.0);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn transitions_cover_starts_and_ends() {
        let mut p = PiecewiseFactor::identity();
        p.push_window(Time::from_secs(1), Time::from_secs(2), 2.0);
        p.push_window(Time::from_secs(3), Time::from_secs(4), 2.0);
        let ts: Vec<Time> = p.transitions().collect();
        assert_eq!(
            ts,
            vec![
                Time::from_secs(1),
                Time::from_secs(2),
                Time::from_secs(3),
                Time::from_secs(4)
            ]
        );
    }
}
