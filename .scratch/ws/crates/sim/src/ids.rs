//! Strongly-typed identifiers shared across the simulation stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulated process (one application process per compute node in the
/// paper's workloads, so `Pid` and `NodeId` usually coincide — but the
/// kernel keeps them distinct so multi-process-per-node configurations
/// remain expressible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Pid(pub u32);

impl Pid {
    /// Index into dense per-process tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A compute or I/O node of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A scheduled job: one workload instance admitted by the batch
/// scheduler. Dedicated-mode runs have exactly one implicit job; the
/// multi-job driver tags every process, file and trace event with the
/// job it belongs to so shared-machine analytics can be split per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobId(pub u32);

impl JobId {
    /// Index into dense per-job tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A file managed by the simulated parallel file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FileId(pub u32);

impl FileId {
    /// Index into dense per-file tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_index() {
        assert!(Pid(1) < Pid(2));
        assert_eq!(Pid(7).index(), 7);
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(FileId(9).index(), 9);
        assert_eq!(JobId(5).index(), 5);
        assert!(JobId(1) < JobId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pid(1).to_string(), "pid1");
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(FileId(3).to_string(), "file3");
        assert_eq!(JobId(4).to_string(), "job4");
    }
}
