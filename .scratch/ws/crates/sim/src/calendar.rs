//! Calendar resources.
//!
//! A [`Calendar`] models a serially-reusable resource (a disk arm, a
//! file's atomicity token, a metadata server) analytically: a request
//! arriving at time `t` with service demand `s` is granted the interval
//! `[max(t, free_at), max(t, free_at) + s)`, and `free_at` advances.
//! Queueing delay therefore *emerges* from overlapping reservations
//! without the kernel having to block and re-dispatch processes.
//!
//! This is the standard analytic treatment used by I/O subsystem
//! simulators; it is exact for FIFO single-server resources, which is
//! what the Paragon's per-I/O-node RAID-3 controllers and the PFS
//! per-file atomicity token are.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// The granted interval for one request on a calendar resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// When service begins (>= arrival).
    pub start: Time,
    /// When service completes.
    pub finish: Time,
}

impl Reservation {
    /// Queueing delay experienced before service began.
    pub fn wait(&self, arrival: Time) -> Time {
        self.start.saturating_sub(arrival)
    }

    /// Total service duration.
    pub fn service(&self) -> Time {
        self.finish - self.start
    }
}

/// A single FIFO serially-reusable resource.
///
/// ```
/// use sioscope_sim::{Calendar, Time};
///
/// let mut disk = Calendar::new();
/// let first = disk.reserve(Time::ZERO, Time::from_millis(10));
/// let second = disk.reserve(Time::from_millis(2), Time::from_millis(5));
/// // The second request queues behind the first.
/// assert_eq!(second.start, first.finish);
/// assert_eq!(second.wait(Time::from_millis(2)), Time::from_millis(8));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Calendar {
    free_at: Time,
    busy: Time,
    served: u64,
}

impl Calendar {
    /// A calendar that is free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `service` time for a request arriving at `arrival`.
    pub fn reserve(&mut self, arrival: Time, service: Time) -> Reservation {
        let start = arrival.max(self.free_at);
        let finish = start + service;
        self.free_at = finish;
        self.busy += service;
        self.served += 1;
        Reservation { start, finish }
    }

    /// Reserve `n` back-to-back requests arriving together at
    /// `arrival` with `total_service` aggregate demand, in one
    /// `free_at` advance.
    ///
    /// Because `Time` is integer nanoseconds and addition is
    /// associative, this is *bit-identical* to `n` sequential
    /// [`Calendar::reserve`] calls at the same arrival whose service
    /// demands sum to `total_service`: the first starts at
    /// `max(arrival, free_at)`, each subsequent one starts exactly at
    /// its predecessor's finish, and `busy`/`served` advance by the
    /// same totals. The returned reservation spans the whole batch
    /// (start of the first through finish of the last).
    pub fn reserve_n(&mut self, arrival: Time, total_service: Time, n: u64) -> Reservation {
        let start = arrival.max(self.free_at);
        let finish = start + total_service;
        self.free_at = finish;
        self.busy += total_service;
        self.served += n;
        Reservation { start, finish }
    }

    /// Earliest instant a new arrival would begin service.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`, in `[0, 1]`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

/// A pool of identical calendar resources indexed densely (e.g. the
/// sixteen I/O nodes of the Caltech Paragon).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalendarPool {
    members: Vec<Calendar>,
}

impl CalendarPool {
    /// `n` initially-free calendars.
    pub fn new(n: usize) -> Self {
        CalendarPool {
            members: vec![Calendar::new(); n],
        }
    }

    /// Number of member resources.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Reserve on member `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn reserve(&mut self, idx: usize, arrival: Time, service: Time) -> Reservation {
        self.members[idx].reserve(arrival, service)
    }

    /// Reserve `n` back-to-back requests on member `idx` (see
    /// [`Calendar::reserve_n`]).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn reserve_n(
        &mut self,
        idx: usize,
        arrival: Time,
        total_service: Time,
        n: u64,
    ) -> Reservation {
        self.members[idx].reserve_n(arrival, total_service, n)
    }

    /// Immutable view of a member.
    pub fn get(&self, idx: usize) -> Option<&Calendar> {
        self.members.get(idx)
    }

    /// Aggregate busy time across all members.
    pub fn total_busy(&self) -> Time {
        self.members.iter().map(|c| c.busy_time()).sum()
    }

    /// Aggregate requests served across all members.
    pub fn total_served(&self) -> u64 {
        self.members.iter().map(|c| c.served()).sum()
    }

    /// The latest `free_at` across members (when the whole pool drains).
    pub fn drained_at(&self) -> Time {
        self.members
            .iter()
            .map(|c| c.free_at())
            .fold(Time::ZERO, Time::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut c = Calendar::new();
        let r = c.reserve(Time::from_secs(5), Time::from_secs(2));
        assert_eq!(r.start, Time::from_secs(5));
        assert_eq!(r.finish, Time::from_secs(7));
        assert_eq!(r.wait(Time::from_secs(5)), Time::ZERO);
        assert_eq!(r.service(), Time::from_secs(2));
    }

    #[test]
    fn overlapping_requests_queue_fifo() {
        let mut c = Calendar::new();
        let r1 = c.reserve(Time::from_secs(0), Time::from_secs(10));
        let r2 = c.reserve(Time::from_secs(1), Time::from_secs(3));
        assert_eq!(r1.finish, Time::from_secs(10));
        assert_eq!(r2.start, Time::from_secs(10));
        assert_eq!(r2.finish, Time::from_secs(13));
        assert_eq!(r2.wait(Time::from_secs(1)), Time::from_secs(9));
    }

    #[test]
    fn gap_between_requests_leaves_idle_time() {
        let mut c = Calendar::new();
        c.reserve(Time::from_secs(0), Time::from_secs(1));
        let r = c.reserve(Time::from_secs(10), Time::from_secs(1));
        assert_eq!(r.start, Time::from_secs(10));
        assert_eq!(c.busy_time(), Time::from_secs(2));
        assert_eq!(c.served(), 2);
        assert!((c.utilization(Time::from_secs(11)) - 2.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn reserve_n_is_bit_identical_to_sequential_reserves() {
        // Same arrivals, same per-request demands: the batched form
        // must leave the calendar in exactly the state the sequential
        // form does and span the same interval.
        let demands = [
            Time::from_millis(3),
            Time::from_millis(7),
            Time::from_nanos(1),
            Time::ZERO,
        ];
        let arrival = Time::from_secs(2);
        let mut sequential = Calendar::new();
        sequential.reserve(Time::ZERO, Time::from_secs(3)); // pre-existing backlog
        let mut batched = sequential.clone();
        let first = sequential.reserve(arrival, demands[0]);
        let mut last = first;
        for &d in &demands[1..] {
            last = sequential.reserve(arrival, d);
        }
        let total: Time = demands.iter().copied().sum();
        let batch = batched.reserve_n(arrival, total, demands.len() as u64);
        assert_eq!(batch.start, first.start);
        assert_eq!(batch.finish, last.finish);
        assert_eq!(batched.free_at(), sequential.free_at());
        assert_eq!(batched.busy_time(), sequential.busy_time());
        assert_eq!(batched.served(), sequential.served());
    }

    #[test]
    fn reserve_n_on_pool_member() {
        let mut p = CalendarPool::new(2);
        let r = p.reserve_n(1, Time::from_secs(1), Time::from_secs(4), 3);
        assert_eq!(r.start, Time::from_secs(1));
        assert_eq!(r.finish, Time::from_secs(5));
        assert_eq!(p.total_served(), 3);
        assert_eq!(p.get(0).unwrap().served(), 0);
    }

    #[test]
    fn utilization_zero_horizon() {
        let c = Calendar::new();
        assert_eq!(c.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn pool_members_are_independent() {
        let mut p = CalendarPool::new(2);
        let r0 = p.reserve(0, Time::ZERO, Time::from_secs(5));
        let r1 = p.reserve(1, Time::ZERO, Time::from_secs(3));
        assert_eq!(r0.start, Time::ZERO);
        assert_eq!(r1.start, Time::ZERO);
        assert_eq!(p.total_busy(), Time::from_secs(8));
        assert_eq!(p.total_served(), 2);
        assert_eq!(p.drained_at(), Time::from_secs(5));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic]
    fn pool_out_of_range_panics() {
        let mut p = CalendarPool::new(1);
        p.reserve(3, Time::ZERO, Time::ZERO);
    }
}
