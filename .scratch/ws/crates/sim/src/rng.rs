//! Deterministic randomness.
//!
//! Every stochastic element of a workload (compute-time jitter, record
//! counts drawn from a distribution) pulls from a [`DetRng`] seeded
//! from the experiment configuration, so re-running an experiment
//! reproduces its trace exactly. Streams can be forked per node with
//! [`DetRng::fork`] so that adding a draw on one node never perturbs
//! another node's stream.

use crate::time::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic random-number source.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Seed a new stream.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for substream `tag` (e.g. a node
    /// index). The derivation uses SplitMix64 mixing so adjacent tags
    /// yield well-separated seeds.
    pub fn fork(&self, tag: u64) -> DetRng {
        // SplitMix64 finalizer over (base draw ^ tag).
        let mut z = self.base() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::new(z)
    }

    fn base(&self) -> u64 {
        // Clone so forking is a pure function of the current state.
        let mut c = self.inner.clone();
        c.gen()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        self.inner.gen_range(lo..=hi)
    }

    /// A duration jittered multiplicatively: `base * (1 ± frac)`,
    /// uniform. `frac` is clamped to `[0, 1)`.
    pub fn jitter(&mut self, base: Time, frac: f64) -> Time {
        let frac = frac.clamp(0.0, 0.999_999);
        if frac == 0.0 || base.is_zero() {
            return base;
        }
        let factor = 1.0 + frac * (2.0 * self.unit() - 1.0);
        base.scale(factor)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(
                a.range_inclusive(0, 1_000_000),
                b.range_inclusive(0, 1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16)
            .map(|_| a.range_inclusive(0, u64::MAX - 1))
            .collect();
        let vb: Vec<u64> = (0..16)
            .map(|_| b.range_inclusive(0, u64::MAX - 1))
            .collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_pure_and_distinct() {
        let root = DetRng::new(7);
        let mut f1 = root.fork(3);
        let mut f1b = root.fork(3);
        let mut f2 = root.fork(4);
        let a: Vec<u64> = (0..8)
            .map(|_| f1.range_inclusive(0, u64::MAX - 1))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| f1b.range_inclusive(0, u64::MAX - 1))
            .collect();
        let c: Vec<u64> = (0..8)
            .map(|_| f2.range_inclusive(0, u64::MAX - 1))
            .collect();
        assert_eq!(a, b, "fork must be deterministic");
        assert_ne!(a, c, "different tags must produce different streams");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = DetRng::new(9);
        let base = Time::from_secs(10);
        for _ in 0..1000 {
            let t = r.jitter(base, 0.2);
            assert!(t >= Time::from_secs_f64(8.0 - 1e-6));
            assert!(t <= Time::from_secs_f64(12.0 + 1e-6));
        }
    }

    #[test]
    fn jitter_zero_frac_is_identity() {
        let mut r = DetRng::new(9);
        assert_eq!(r.jitter(Time::from_secs(5), 0.0), Time::from_secs(5));
        assert_eq!(r.jitter(Time::ZERO, 0.5), Time::ZERO);
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
