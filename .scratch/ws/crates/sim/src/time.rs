//! Simulated time.
//!
//! [`Time`] is a nanosecond count since the start of the simulation.
//! The same type is used for instants and for durations; the paper's
//! measurements span thousands of seconds, which fits comfortably in a
//! `u64` nanosecond counter (wrap at ~584 years of simulated time).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated instant or duration, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero instant (simulation start) / the zero duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative and non-finite
    /// inputs saturate to zero; this keeps the cost model total even if
    /// a calibration constant underflows.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Time::ZERO;
        }
        Time((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// Scale a duration by a dimensionless factor, saturating and
    /// clamping negative/non-finite factors to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        if !factor.is_finite() || factor <= 0.0 {
            return Time::ZERO;
        }
        Time((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }

    /// `true` iff this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2_000));
        assert_eq!(Time::from_millis(3), Time::from_micros(3_000));
        assert_eq!(Time::from_micros(5), Time::from_nanos(5_000));
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let t = Time::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NEG_INFINITY), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_secs(3);
        let b = Time::from_secs(1);
        assert_eq!(a + b, Time::from_secs(4));
        assert_eq!(a - b, Time::from_secs(2));
        assert_eq!(a * 2, Time::from_secs(6));
        assert_eq!(a / 3, Time::from_secs(1));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Time::from_secs(2)));
    }

    #[test]
    fn scale_clamps_and_rounds() {
        let t = Time::from_secs(10);
        assert_eq!(t.scale(0.5), Time::from_secs(5));
        assert_eq!(t.scale(-2.0), Time::ZERO);
        assert_eq!(t.scale(f64::NAN), Time::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Time = (1..=4u64).map(Time::from_secs).sum();
        assert_eq!(total, Time::from_secs(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
        assert_eq!(Time::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Time::from_micros(2).to_string(), "2.000us");
        assert_eq!(Time::from_nanos(2).to_string(), "2ns");
    }
}
