//! # sioscope-sim
//!
//! Deterministic discrete-event simulation kernel underpinning the
//! sioscope reproduction of Smirni et al., *"I/O Requirements of
//! Scientific Applications: An Evolutionary View"* (HPDC 1996).
//!
//! The kernel is intentionally small and policy-free. It provides:
//!
//! * [`Time`] — a nanosecond-resolution simulated clock value,
//! * [`EventQueue`] — a deterministic priority queue of timestamped
//!   events with stable FIFO tie-breaking,
//! * [`Calendar`] / [`CalendarPool`] — analytic resource calendars used
//!   to model serialized devices (disk arms, file-atomicity tokens,
//!   metadata servers) without explicit blocking,
//! * [`RendezvousTable`] — group synchronization used to model
//!   collective file operations (`gopen`, `M_GLOBAL`, `M_RECORD`,
//!   `M_SYNC`) and compute-phase barriers,
//! * [`DetRng`] — a seeded random-number source so every experiment is
//!   exactly reproducible.
//!
//! Higher layers (the machine model, the PFS model, the application
//! workloads) are pure policy over these mechanisms; the event loop
//! itself lives in the `sioscope` core crate.

pub mod calendar;
pub mod event;
pub mod hash;
pub mod ids;
pub mod rendezvous;
pub mod rng;
pub mod time;
pub mod timeline;

pub use calendar::{Calendar, CalendarPool, Reservation};
pub use event::{EventQueue, ScheduledEvent};
pub use hash::{DetHashMap, DetHashSet, FxBuildHasher, FxHasher};
pub use ids::{FileId, JobId, NodeId, Pid};
pub use rendezvous::{RendezvousOutcome, RendezvousTable};
pub use rng::DetRng;
pub use time::Time;
pub use timeline::PiecewiseFactor;
