//! Group rendezvous.
//!
//! PFS collective operations (`gopen`, `M_GLOBAL` reads, `M_RECORD`
//! node-ordered transfers, `M_SYNC` synchronized transfers) and the
//! applications' compute-phase barriers all share one mechanism: every
//! participant blocks until the whole group has arrived, then the
//! operation is costed once and completions are handed back to all
//! members.
//!
//! [`RendezvousTable`] tracks any number of concurrently-forming
//! groups, keyed by an opaque `u64` chosen by the caller (the PFS uses
//! `(file, generation)` pairs packed into the key; barriers use their
//! barrier id).

use crate::hash::DetHashMap;
use crate::ids::Pid;
use crate::time::Time;

/// Result of one participant arriving at a rendezvous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RendezvousOutcome {
    /// The group is still forming; the caller must block.
    Waiting,
    /// This arrival completed the group. `arrivals` lists every member
    /// (including the current one) with its arrival time, in arrival
    /// order; `release` is the latest arrival time, i.e. the instant
    /// the collective operation can begin.
    Complete {
        /// All `(pid, arrival_time)` pairs in arrival order.
        arrivals: Vec<(Pid, Time)>,
        /// When the last member arrived.
        release: Time,
    },
}

#[derive(Debug, Default)]
struct Group {
    expected: usize,
    arrivals: Vec<(Pid, Time)>,
}

/// Tracks concurrently-forming rendezvous groups.
#[derive(Debug, Default)]
pub struct RendezvousTable {
    groups: DetHashMap<u64, Group>,
    completed: u64,
}

impl RendezvousTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `pid` arrived at rendezvous `key` at time `now`,
    /// where the group completes once `expected` distinct arrivals have
    /// been seen.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero, if a forming group was created
    /// with a different `expected`, or if the same `pid` arrives twice
    /// at the same forming group — all three indicate a workload
    /// generation bug that must not be silently absorbed.
    pub fn arrive(&mut self, key: u64, pid: Pid, now: Time, expected: usize) -> RendezvousOutcome {
        assert!(
            expected > 0,
            "rendezvous group must expect at least one member"
        );
        let group = self.groups.entry(key).or_insert_with(|| Group {
            expected,
            arrivals: Vec::with_capacity(expected),
        });
        assert_eq!(
            group.expected, expected,
            "rendezvous {key}: group size disagreement"
        );
        assert!(
            !group.arrivals.iter().any(|&(p, _)| p == pid),
            "rendezvous {key}: {pid} arrived twice"
        );
        group.arrivals.push((pid, now));
        if group.arrivals.len() == group.expected {
            let group = self.groups.remove(&key).expect("group just inserted");
            let release = group
                .arrivals
                .iter()
                .map(|&(_, t)| t)
                .fold(Time::ZERO, Time::max);
            self.completed += 1;
            RendezvousOutcome::Complete {
                arrivals: group.arrivals,
                release,
            }
        } else {
            RendezvousOutcome::Waiting
        }
    }

    /// Number of groups currently forming (useful for deadlock checks:
    /// when the event queue drains this must be zero).
    pub fn forming(&self) -> usize {
        self.groups.len()
    }

    /// Number of groups that have completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Pids currently blocked in forming groups, for diagnostics.
    pub fn blocked_pids(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self
            .groups
            .values()
            .flat_map(|g| g.arrivals.iter().map(|&(p, _)| p))
            .collect();
        pids.sort_unstable();
        pids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_completes_immediately() {
        let mut t = RendezvousTable::new();
        match t.arrive(1, Pid(0), Time::from_secs(3), 1) {
            RendezvousOutcome::Complete { arrivals, release } => {
                assert_eq!(arrivals, vec![(Pid(0), Time::from_secs(3))]);
                assert_eq!(release, Time::from_secs(3));
            }
            RendezvousOutcome::Waiting => panic!("should complete"),
        }
        assert_eq!(t.completed(), 1);
        assert_eq!(t.forming(), 0);
    }

    #[test]
    fn group_releases_at_last_arrival() {
        let mut t = RendezvousTable::new();
        assert_eq!(
            t.arrive(7, Pid(0), Time::from_secs(1), 3),
            RendezvousOutcome::Waiting
        );
        assert_eq!(
            t.arrive(7, Pid(1), Time::from_secs(9), 3),
            RendezvousOutcome::Waiting
        );
        assert_eq!(t.forming(), 1);
        assert_eq!(t.blocked_pids(), vec![Pid(0), Pid(1)]);
        match t.arrive(7, Pid(2), Time::from_secs(4), 3) {
            RendezvousOutcome::Complete { arrivals, release } => {
                assert_eq!(release, Time::from_secs(9));
                assert_eq!(arrivals.len(), 3);
                // Arrival order preserved.
                assert_eq!(arrivals[0].0, Pid(0));
                assert_eq!(arrivals[1].0, Pid(1));
                assert_eq!(arrivals[2].0, Pid(2));
            }
            RendezvousOutcome::Waiting => panic!("should complete"),
        }
        assert_eq!(t.forming(), 0);
    }

    #[test]
    fn independent_keys_do_not_interfere() {
        let mut t = RendezvousTable::new();
        assert_eq!(
            t.arrive(1, Pid(0), Time::ZERO, 2),
            RendezvousOutcome::Waiting
        );
        assert_eq!(
            t.arrive(2, Pid(1), Time::ZERO, 2),
            RendezvousOutcome::Waiting
        );
        assert_eq!(t.forming(), 2);
        assert!(matches!(
            t.arrive(1, Pid(1), Time::ZERO, 2),
            RendezvousOutcome::Complete { .. }
        ));
        assert_eq!(t.forming(), 1);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut t = RendezvousTable::new();
        t.arrive(1, Pid(0), Time::ZERO, 2);
        t.arrive(1, Pid(0), Time::ZERO, 2);
    }

    #[test]
    #[should_panic(expected = "group size disagreement")]
    fn size_disagreement_panics() {
        let mut t = RendezvousTable::new();
        t.arrive(1, Pid(0), Time::ZERO, 2);
        t.arrive(1, Pid(1), Time::ZERO, 3);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_size_group_panics() {
        let mut t = RendezvousTable::new();
        t.arrive(1, Pid(0), Time::ZERO, 0);
    }
}
