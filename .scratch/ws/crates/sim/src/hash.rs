//! Deterministic, DoS-hardening-free hashing for simulator-internal
//! maps.
//!
//! The standard library's default hasher is SipHash behind a
//! per-process random seed — the right default for servers parsing
//! untrusted input, and a waste for a simulator hashing its own small
//! integer keys (pids, file ids) millions of times per run. This is
//! the Fx multiply-xor hash (the rustc-internal scheme): one rotate,
//! one xor and one multiply per word, with a fixed seed.
//!
//! Determinism note: the simulator's bit-exactness never depended on
//! map *iteration* order (every iteration that feeds results is over
//! vectors or sorted keys), so hasher choice cannot change outputs —
//! it only removes per-lookup overhead and makes iteration order
//! stable across processes as a bonus.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx multiply-xor hasher with a fixed seed.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type DetHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hasher.
pub type DetHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&(7u64, 13u32)), hash_of(&(7u64, 13u32)));
        assert_eq!(hash_of(&"escat"), hash_of(&"escat"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&(0u32, 1u32)), hash_of(&(1u32, 0u32)));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn byte_tails_are_length_distinguished() {
        // Same prefix bytes, different lengths must not collide via
        // zero padding.
        assert_ne!(hash_of(&[1u8, 0][..]), hash_of(&[1u8][..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<(u32, u64), &str> = DetHashMap::default();
        for i in 0..1000 {
            m.insert((i, u64::from(i) * 7), "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&(999, 999 * 7)));
        let mut s: DetHashSet<u64> = DetHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
