//! Report rendering: run experiments and print each artifact next to
//! the paper's published values.

use crate::experiments::{self, shape, Experiment, ExperimentOutput, Scale};
use crate::paper;
use rayon::prelude::*;
use std::fmt::Write as _;

/// Run every experiment at `scale` (in parallel across experiments)
/// and collect the outputs in presentation order.
///
/// Each simulated run is memoized per version, and its trace's
/// columnar [`TraceIndex`](sioscope_trace::TraceIndex) is warmed once
/// before the run enters the cache — so every figure and table below
/// answers its size/timeline/duration queries from the shared index
/// instead of rescanning the event stream.
pub fn run_all(scale: Scale) -> Vec<ExperimentOutput> {
    // Pre-warm the per-version run caches in parallel, then render.
    let mut outputs: Vec<(usize, ExperimentOutput)> = Experiment::all()
        .into_par_iter()
        .enumerate()
        .map(|(i, e)| (i, experiments::run_experiment(e, scale)))
        .collect();
    outputs.sort_by_key(|&(i, _)| i);
    outputs.into_iter().map(|(_, o)| o).collect()
}

/// Render one experiment output, including its shape-check verdicts.
pub fn render_output(out: &ExperimentOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "================================================================"
    );
    let _ = writeln!(s, "{} [{}]", out.experiment.title(), out.experiment.id());
    let _ = writeln!(
        s,
        "================================================================"
    );
    s.push_str(&out.rendered);
    let _ = writeln!(s, "Shape checks vs. paper:");
    s.push_str(&shape::render_checks(&out.checks));
    s
}

/// Assemble the complete study — every experiment's artifact and
/// shape checks plus the paper reference — as one document.
pub fn full_report(scale: Scale) -> String {
    let mut s = String::new();
    s.push_str(&render_paper_reference());
    s.push('\n');
    for out in run_all(scale) {
        s.push_str(&render_output(&out));
    }
    s
}

/// Render the paper's reference tables for side-by-side reading.
pub fn render_paper_reference() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Paper reference values (HPDC 1996):");
    let _ = writeln!(s, "  Table 2 (ESCAT, % of I/O time):");
    for col in &paper::ESCAT_TABLE2 {
        let _ = writeln!(
            s,
            "    {}: dominant = {}",
            col.version,
            col.dominant().label()
        );
    }
    let _ = writeln!(s, "  Table 3 (ESCAT, all-I/O % of execution):");
    for (col, all) in paper::ESCAT_TABLE3.iter().zip(paper::ESCAT_TABLE3_ALL_IO) {
        let _ = writeln!(s, "    {}: {all}%", col.version);
    }
    let _ = writeln!(s, "  Table 5 (PRISM, % of I/O time):");
    for col in &paper::PRISM_TABLE5 {
        let _ = writeln!(
            s,
            "    {}: dominant = {}",
            col.version,
            col.dominant().label()
        );
    }
    let _ = writeln!(
        s,
        "  Fig 1: ESCAT exec reduction ~{:.0}%; Fig 6: PRISM ~{:.0}%",
        100.0 * paper::ESCAT_EXEC_REDUCTION,
        100.0 * paper::PRISM_EXEC_REDUCTION
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_renders() {
        let s = render_paper_reference();
        assert!(s.contains("Table 2"));
        assert!(s.contains("2.97"));
        assert!(s.contains("19.4"));
    }

    #[test]
    fn full_report_covers_every_experiment() {
        let report = full_report(Scale::Smoke);
        for e in Experiment::all() {
            assert!(report.contains(e.id()), "report missing {}", e.id());
        }
    }

    #[test]
    fn render_output_includes_checks() {
        let out = experiments::escat::table1();
        let s = render_output(&out);
        assert!(s.contains("escat-table1"));
        assert!(s.contains("[pass]") || s.contains("[FAIL]"));
    }
}
