//! Seeded chaos/soak harness for the storage tiers and the streaming
//! pipeline.
//!
//! Each case draws one paper workload and one tier, fuzzes a
//! tier-appropriate fault schedule from the seed, and checks the hard
//! invariants the fault subsystem promises no schedule can break:
//!
//! 1. **Byte conservation** — on every tier, after quiesce,
//!    `bytes_logged == bytes_drained + bytes_resident + bytes_lost`.
//! 2. **Golden bit-identity** — the fault-free PFS run still matches
//!    the pre-refactor fingerprint in
//!    `tests/golden/backend_baseline.txt` (supplied by the caller;
//!    the library never reads test fixtures itself).
//! 3. **Hook neutrality** — an engaged-but-empty schedule is
//!    bit-identical to no schedule at all.
//! 4. **Replay identity** — the same seed replays to the same
//!    fingerprint, resilience counters included.
//! 5. **Recovery sanity** — with the tier's faults held fixed,
//!    time-to-solution under compute crashes is never better than the
//!    crash-free run (crashes only ever add rework and replay).
//!
//! The `stream` tier runs the coupled producer–consumer pipeline
//! instead of a file-system workload (see [`stream_chaos_case`]); its
//! invariants are byte conservation through the staging queue, replay
//! identity, crash monotonicity (a consumer outage never *shrinks*
//! latency or stall), and the unbounded-queue equivalence.
//!
//! The `sioscope-bench` `chaos` subcommand drives this over a fixed
//! seed budget (the CI `chaos-smoke` job); the functions are public
//! so soaks can also run in-process from tests.

use crate::canon::WorkloadId;
use crate::coupled::{run_coupled, Route};
use crate::experiments::Scale;
use crate::recovery::run_with_recovery_backend;
use crate::simulator::{run_backend, RunResult, SimOptions};
use sioscope_faults::{FaultGen, FaultKind, FaultSchedule};
use sioscope_pfs::{BackendConfig, BackendKind, BurstBufferConfig, ObjectStoreConfig, PfsConfig};
use sioscope_sim::Time;
use sioscope_stream::StagingConfig;
use sioscope_workloads::{
    CheckpointPolicy, EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload,
};
use std::collections::BTreeMap;

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical run fingerprint: exec nanoseconds, event count,
/// fault transitions, trace length, and FNV-64 digests of the binary
/// trace and the per-node finish vector. Identical format to the
/// committed `tests/golden/backend_baseline.txt` columns.
pub fn fingerprint(r: &RunResult) -> String {
    let trace_bytes = sioscope_trace::binary::encode(&r.trace);
    let mut finish = Vec::with_capacity(r.node_finish.len() * 8);
    for t in &r.node_finish {
        finish.extend_from_slice(&t.as_nanos().to_le_bytes());
    }
    format!(
        "{} {} {} {} {:016x} {:016x}",
        r.exec_time.as_nanos(),
        r.events,
        r.fault_transitions,
        r.trace.len(),
        fnv64(&trace_bytes),
        fnv64(&finish)
    )
}

/// A tier the chaos harness can soak: one of the storage backends, or
/// the in-transit streaming pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosTier {
    /// A storage backend (`pfs`, `object`, `burst`).
    Backend(BackendKind),
    /// The coupled streaming pipeline over bounded staging queues.
    Stream,
}

impl ChaosTier {
    /// Every tier, storage backends first, in soak order.
    pub fn all() -> Vec<ChaosTier> {
        let mut tiers: Vec<ChaosTier> = BackendKind::all()
            .iter()
            .copied()
            .map(ChaosTier::Backend)
            .collect();
        tiers.push(ChaosTier::Stream);
        tiers
    }

    /// Stable string id (CLI `--tiers`, artifact lines).
    pub fn id(self) -> &'static str {
        match self {
            ChaosTier::Backend(b) => b.id(),
            ChaosTier::Stream => "stream",
        }
    }

    /// Parse a stable id.
    pub fn from_id(id: &str) -> Option<ChaosTier> {
        ChaosTier::all().into_iter().find(|t| t.id() == id)
    }
}

impl std::fmt::Display for ChaosTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One chaos case's outcome: which (tier, seed, workload) ran, the
/// faulted run's fingerprint, and every invariant violation observed
/// (empty means the case passed).
#[derive(Debug, Clone)]
pub struct ChaosVerdict {
    /// Tier the case ran against.
    pub tier: ChaosTier,
    /// Seed that drew the workload and fault schedule.
    pub seed: u64,
    /// Canonical id of the workload the seed drew.
    pub workload: &'static str,
    /// Fingerprint of the faulted run (replay-checked).
    pub fingerprint: String,
    /// Invariant violations; empty for a passing case.
    pub violations: Vec<String>,
}

impl ChaosVerdict {
    /// True when no invariant was violated.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// One plain-text verdict line (the CI artifact format).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} seed={} workload={} {} fp={}",
            self.tier.id(),
            self.seed,
            self.workload,
            if self.pass() { "PASS" } else { "FAIL" },
            self.fingerprint,
        );
        for v in &self.violations {
            line.push_str("\n  violation: ");
            line.push_str(v);
        }
        line
    }
}

/// The tier config the chaos harness runs: the canonical Caltech PFS,
/// the modern object store, or the absorb-everything burst buffer,
/// with `faults` installed on the tier itself.
fn tier_cfg(kind: BackendKind, workload: &Workload, faults: FaultSchedule) -> BackendConfig {
    match kind {
        BackendKind::Pfs => {
            let mut c = PfsConfig::caltech(workload.nodes, workload.os);
            c.faults = faults;
            BackendConfig::Pfs(c)
        }
        BackendKind::Object => {
            let mut c = ObjectStoreConfig::modern(workload.nodes);
            c.faults = faults;
            BackendConfig::Object(c)
        }
        BackendKind::Burst => {
            let mut c = BurstBufferConfig::over(PfsConfig::caltech(workload.nodes, workload.os));
            c.faults = faults;
            BackendConfig::Burst(c)
        }
    }
}

/// The seed's tier-appropriate fuzzed schedule over `horizon`.
fn tier_schedule(
    kind: BackendKind,
    seed: u64,
    horizon: Time,
    workload: &Workload,
    events: usize,
) -> FaultSchedule {
    let io_nodes = match kind {
        BackendKind::Pfs | BackendKind::Burst => {
            PfsConfig::caltech(workload.nodes, workload.os)
                .machine
                .io_nodes
        }
        BackendKind::Object => 0,
    };
    let generator = FaultGen::new(seed, horizon, io_nodes).with_events(events);
    match kind {
        BackendKind::Pfs => generator.schedule(),
        BackendKind::Object => generator.object_schedule(4),
        BackendKind::Burst => generator.burst_schedule(),
    }
}

/// Run one chaos case. `golden` optionally maps canonical workload
/// ids to the committed fault-free PFS fingerprints; when present and
/// the tier is the PFS, the fault-free run must reproduce its entry
/// bit for bit.
pub fn chaos_case(
    tier: BackendKind,
    seed: u64,
    golden: Option<&BTreeMap<String, String>>,
) -> ChaosVerdict {
    let ids = WorkloadId::all();
    let id = ids[(seed as usize) % ids.len()];
    let workload = id.build(Scale::Smoke);
    let mut violations = Vec::new();

    let run_with = |faults: FaultSchedule| {
        run_backend(
            &workload,
            &tier_cfg(tier, &workload, faults),
            SimOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{} on {}: {e}", id.id(), tier.id()))
    };

    // Fault-free baseline, checked against the committed golden
    // fingerprints on the measured (PFS) tier.
    let clean = run_with(FaultSchedule::empty());
    let clean_fp = fingerprint(&clean);
    if tier == BackendKind::Pfs {
        if let Some(want) = golden.and_then(|g| g.get(id.id())) {
            if *want != clean_fp {
                violations.push(format!(
                    "golden divergence: fault-free pfs run is {clean_fp}, baseline says {want}"
                ));
            }
        }
    }
    if !clean.backend_stats.conserves_bytes() {
        violations.push(format!(
            "fault-free conservation broken: {:?}",
            clean.backend_stats
        ));
    }

    // Engaged-but-empty hooks must be invisible.
    let engaged = run_with(FaultSchedule::engaged_empty());
    let engaged_fp = fingerprint(&engaged);
    if engaged_fp != clean_fp {
        violations.push(format!(
            "engaged-empty schedule perturbed the run: {engaged_fp} vs {clean_fp}"
        ));
    }

    // The fuzzed schedule: event count is itself seed-derived so the
    // soak covers sparse and dense schedules alike.
    let events = 1 + (seed % 4) as usize;
    let faults = tier_schedule(tier, seed, clean.exec_time, &workload, events);
    let faulted = run_with(faults.clone());
    let faulted_fp = fingerprint(&faulted);

    if !faulted.backend_stats.conserves_bytes() {
        let s = faulted.backend_stats;
        violations.push(format!(
            "conservation broken under faults: {} logged != {} drained + {} resident + {} lost",
            s.bytes_logged, s.bytes_drained, s.bytes_resident, s.bytes_lost
        ));
    }

    // Same seed, same world.
    let replay = run_with(faults);
    let replay_fp = fingerprint(&replay);
    if replay_fp != faulted_fp || replay.resilience != faulted.resilience {
        violations.push(format!("replay divergence: {replay_fp} vs {faulted_fp}"));
    }

    // Recovery sanity: compute crashes only ever *add* time — rework,
    // restart latency, replayed work — so with the tier's faults held
    // fixed, crashing the run can never beat the crash-free
    // time-to-solution. Runs a fixed recoverable workload so every
    // tier exercises the rollback/durability path (the burst tier's
    // lost-bytes commits route through `durable_commits` here).
    let rec =
        EscatConfig::tiny(EscatVersion::B).recoverable(CheckpointPolicy::Fixed { interval: 5 });
    let rec_faults = tier_schedule(tier, seed, clean.exec_time, rec.workload(), events);
    let rec_base = run_with_recovery_backend(
        &rec,
        &FaultSchedule::empty(),
        &tier_cfg(tier, rec.workload(), rec_faults.clone()),
        SimOptions::default(),
    )
    .expect("crash-free recovery run");
    let horizon = rec_base.exec_time;
    let crashes = FaultGen::new(seed, horizon, 0).compute_crash_schedule(
        horizon.scale(0.4).max(Time::from_millis(1)),
        horizon.scale(0.05).max(Time::from_millis(1)),
        rec.workload().nodes,
    );
    let rec_crashed = run_with_recovery_backend(
        &rec,
        &crashes,
        &tier_cfg(tier, rec.workload(), rec_faults),
        SimOptions::default(),
    )
    .expect("crashed recovery run");
    if rec_crashed.recovery.time_to_solution < rec_base.recovery.time_to_solution {
        violations.push(format!(
            "recovery TTS beat the crash-free run: {} < {}",
            rec_crashed.recovery.time_to_solution, rec_base.recovery.time_to_solution
        ));
    }

    ChaosVerdict {
        tier: ChaosTier::Backend(tier),
        seed,
        workload: id.id(),
        fingerprint: faulted_fp,
        violations,
    }
}

/// Run one chaos case against the streaming pipeline. The seed draws
/// a staging depth (including undersized and unbounded), a consumer
/// speed, and a PRISM code version, then fuzzes a consumer-crash
/// schedule over the clean run's horizon and checks:
///
/// 1. **Byte conservation** — pushed == popped + resident through the
///    staging queue, clean and faulted alike, with the full cadence
///    payload delivered.
/// 2. **Replay identity** — the same seed replays to the same
///    coupled-run fingerprint (trace digest included).
/// 3. **Crash monotonicity** — consumer outages never shrink the
///    pipeline latency or the producer's stall.
/// 4. **Unbounded equivalence** — `depth = 0` is bit-identical to a
///    queue deep enough to hold the whole payload, and never stalls.
pub fn stream_chaos_case(seed: u64) -> ChaosVerdict {
    const DEPTHS: [u64; 5] = [16 << 10, 32 << 10, 64 << 10, 256 << 10, 0];
    const SPEEDS: [u32; 4] = [50, 100, 150, 25];
    const VERSIONS: [(PrismVersion, &str); 3] = [
        (PrismVersion::A, "stream-prism-a"),
        (PrismVersion::B, "stream-prism-b"),
        (PrismVersion::C, "stream-prism-c"),
    ];
    let depth = DEPTHS[(seed % DEPTHS.len() as u64) as usize];
    let speed = SPEEDS[((seed / 5) % SPEEDS.len() as u64) as usize];
    let (version, label) = VERSIONS[((seed / 20) % VERSIONS.len() as u64) as usize];
    let cadence = PrismConfig::tiny(version).stream_cadence();
    let mut violations = Vec::new();

    let run_at = |depth: u64, faults: &FaultSchedule| {
        let route = Route::Stream(StagingConfig::paragon(depth));
        run_coupled(&cadence, &route, speed, faults)
            .unwrap_or_else(|e| panic!("stream chaos seed {seed} on {label}: {e}"))
    };

    // Fault-free: the ledger must balance and the payload arrive whole.
    let clean = run_at(depth, &FaultSchedule::empty());
    if !clean.conserves || clean.bytes != cadence.total_bytes() {
        violations.push(format!(
            "fault-free conservation broken: {} of {} B through depth {depth}",
            clean.bytes,
            cadence.total_bytes()
        ));
    }

    // Unbounded equivalence: depth 0 never stalls and matches a queue
    // that could hold every byte of the cadence at once.
    let unbounded = run_at(0, &FaultSchedule::empty());
    let oversized = run_at(cadence.total_bytes(), &FaultSchedule::empty());
    if unbounded.producer_stall != Time::ZERO {
        violations.push(format!(
            "unbounded queue stalled the producer: {}",
            unbounded.producer_stall
        ));
    }
    if unbounded.fingerprint() != oversized.fingerprint() {
        violations.push(format!(
            "unbounded != oversized queue: {} vs {}",
            unbounded.fingerprint(),
            oversized.fingerprint()
        ));
    }

    // Seed-fuzzed consumer crashes across the clean horizon.
    let crashes = 1 + seed % 3;
    let stall = clean
        .pipeline_latency
        .scale(0.05 + 0.1 * ((seed % 7) as f64) / 7.0)
        .max(Time::from_millis(1));
    let mut faults = FaultSchedule::empty();
    for k in 0..crashes {
        let frac = 0.1 + 0.8 * (k as f64) / (crashes as f64);
        faults.push(
            clean.pipeline_latency.scale(frac),
            FaultKind::ConsumerCrash { stall },
        );
    }
    let faulted = run_at(depth, &faults);
    if !faulted.conserves || faulted.bytes != cadence.total_bytes() {
        violations.push(format!(
            "conservation broken under consumer crashes: {} of {} B",
            faulted.bytes,
            cadence.total_bytes()
        ));
    }
    if faulted.pipeline_latency < clean.pipeline_latency {
        violations.push(format!(
            "crash shrank the pipeline: {} < {}",
            faulted.pipeline_latency, clean.pipeline_latency
        ));
    }
    if faulted.producer_stall < clean.producer_stall {
        violations.push(format!(
            "crash shrank the producer stall: {} < {}",
            faulted.producer_stall, clean.producer_stall
        ));
    }

    // Same seed, same world.
    let replay = run_at(depth, &faults);
    if replay.fingerprint() != faulted.fingerprint() {
        violations.push(format!(
            "replay divergence: {} vs {}",
            replay.fingerprint(),
            faulted.fingerprint()
        ));
    }

    ChaosVerdict {
        tier: ChaosTier::Stream,
        seed,
        workload: label,
        fingerprint: faulted.fingerprint(),
        violations,
    }
}

/// Soak `seeds` schedules across every tier in `tiers`, returning one
/// verdict per (tier, seed) in deterministic order.
pub fn chaos_soak(
    tiers: &[ChaosTier],
    start_seed: u64,
    seeds: u64,
    golden: Option<&BTreeMap<String, String>>,
) -> Vec<ChaosVerdict> {
    let mut verdicts = Vec::with_capacity(tiers.len() * seeds as usize);
    for &tier in tiers {
        for seed in start_seed..start_seed.saturating_add(seeds) {
            verdicts.push(match tier {
                ChaosTier::Backend(b) => chaos_case(b, seed, golden),
                ChaosTier::Stream => stream_chaos_case(seed),
            });
        }
    }
    verdicts
}

/// Parse the committed backend baseline (`tests/golden/
/// backend_baseline.txt`) into the golden map [`chaos_case`] checks
/// against: the fault-free (fault_events == 0) rows, id →
/// fingerprint.
pub fn parse_golden_baseline(text: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        // id fault_events seed exec_ns events transitions trace_len fnv fnv
        if fields.len() == 9 && fields[1] == "0" {
            map.insert(fields[0].to_string(), fields[3..].join(" "));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_case_passes_on_every_tier() {
        for tier in BackendKind::all() {
            let v = chaos_case(tier, 7, None);
            assert!(v.pass(), "{}", v.render());
            assert!(v.render().contains("PASS"));
        }
    }

    #[test]
    fn chaos_tier_ids_round_trip() {
        let tiers = ChaosTier::all();
        assert_eq!(tiers.len(), 4);
        assert_eq!(tiers.last(), Some(&ChaosTier::Stream));
        for t in &tiers {
            assert_eq!(ChaosTier::from_id(t.id()), Some(*t));
        }
        assert_eq!(ChaosTier::from_id("stream"), Some(ChaosTier::Stream));
        assert_eq!(ChaosTier::from_id("nvme"), None);
    }

    #[test]
    fn stream_chaos_cases_pass_over_a_seed_window() {
        for seed in 0..12 {
            let v = stream_chaos_case(seed);
            assert!(v.pass(), "{}", v.render());
            assert_eq!(v.tier, ChaosTier::Stream);
            assert!(v.workload.starts_with("stream-prism-"));
            assert!(v.render().starts_with("stream seed="));
        }
    }

    #[test]
    fn chaos_soak_dispatches_the_stream_tier() {
        let verdicts = chaos_soak(&[ChaosTier::Stream], 5, 2, None);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| v.tier == ChaosTier::Stream));
        assert!(verdicts.iter().all(ChaosVerdict::pass));
    }

    #[test]
    fn chaos_soak_is_deterministic_and_ordered() {
        let a = chaos_soak(&[ChaosTier::Backend(BackendKind::Object)], 3, 2, None);
        let b = chaos_soak(&[ChaosTier::Backend(BackendKind::Object)], 3, 2, None);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].seed, 3);
        assert_eq!(a[1].seed, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert!(x.pass() && y.pass(), "{}\n{}", x.render(), y.render());
        }
    }

    #[test]
    fn golden_baseline_parses_fault_free_rows_only() {
        let text = "# header\nescat-a 0 0 1 2 0 3 aa bb\nescat-a 2 9 1 2 4 3 aa bb\n";
        let map = parse_golden_baseline(text);
        assert_eq!(map.len(), 1);
        assert_eq!(map["escat-a"], "1 2 0 3 aa bb");
    }

    #[test]
    fn golden_divergence_is_reported() {
        let mut golden = BTreeMap::new();
        golden.insert(
            WorkloadId::all()[(11usize) % WorkloadId::all().len()]
                .id()
                .to_string(),
            "0 0 0 0 dead beef".to_string(),
        );
        let v = chaos_case(BackendKind::Pfs, 11, Some(&golden));
        assert!(!v.pass());
        assert!(v.violations[0].contains("golden divergence"));
    }
}
