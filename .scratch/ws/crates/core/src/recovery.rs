//! Checkpoint/restart recovery: end-to-end time-to-solution under
//! compute-node failures.
//!
//! The paper's applications are gang-scheduled SPMD codes: one dead
//! compute node kills the whole attempt, and the run restarts from its
//! last committed checkpoint (PRISM's restart file is literally the
//! mechanism — phase one re-reads it in 155,584-byte records). This
//! module drives the simulator through that story:
//!
//! 1. Run the current attempt (full workload, or a replay sliced from
//!    the last committed marker).
//! 2. If a scheduled [`FaultKind::ComputeNodeCrash`] lands inside the
//!    attempt, charge the crash's rework/reboot latency, roll the
//!    attempt back to its last committed checkpoint, and go again —
//!    the replay re-reads the checkpoint through the real PFS path
//!    via the workload's restart prologue.
//! 3. When an attempt outlives the remaining crash schedule, its
//!    completion instant is the *time-to-solution*.
//!
//! Every decision is a pure function of the (seeded) crash schedule
//! and the deterministic simulator, so same-seed recovery runs are
//! bit-identical end to end.

use crate::simulator::{run, run_backend, RunResult, SimError, SimOptions};
use serde::{Deserialize, Serialize};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_pfs::{BackendConfig, OpKind, PfsConfig};
use sioscope_sim::{FileId, Time};
use sioscope_workloads::{Recoverable, Workload};

/// Accounting for one recovery story (one workload, one crash
/// schedule, run to solution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Compute-node crashes survived on the way to the solution.
    pub crashes: u32,
    /// Attempts launched (`crashes + 1`).
    pub attempts: u32,
    /// Work time lost to crashes: for each crash, the attempt time
    /// past the last committed checkpoint.
    pub rework: Time,
    /// Total reboot/reschedule latency charged by the crashes.
    pub restart_latency: Time,
    /// Bytes written to the checkpoint files across all attempts
    /// (writes that had started by each crash, plus the final
    /// attempt's full checkpoint output).
    pub checkpoint_write_bytes: u64,
    /// Bytes the restart prologues read back from the checkpoint
    /// (charged once per replay-from-marker attempt).
    pub checkpoint_read_bytes: u64,
    /// End-to-end wall clock from first launch to the final attempt's
    /// completion, including all rework and restart latency.
    pub time_to_solution: Time,
}

/// Run `rec` to solution under the compute-node crashes in `crashes`.
///
/// Only [`FaultKind::ComputeNodeCrash`] events are consumed here; I/O
/// faults belong in `pfs_cfg.faults` as usual (the two compose — the
/// PFS never observes compute crashes). Crash instants are global
/// wall-clock times; a crash that lands during another crash's
/// rework window is absorbed by it (the partition is already down).
///
/// Returns the final attempt's [`RunResult`] with
/// [`RunResult::recovery`] filled in. With an empty crash schedule
/// the result is bit-identical to a plain [`run`] of the annotated
/// workload, and `time_to_solution == exec_time`.
pub fn run_with_recovery(
    rec: &Recoverable,
    crashes: &FaultSchedule,
    pfs_cfg: PfsConfig,
    options: SimOptions,
) -> Result<RunResult, SimError> {
    // Fail fast on malformed crash scenarios before any simulation.
    let problems = crashes.validate_for(pfs_cfg.machine.io_nodes, rec.workload().nodes);
    if !problems.is_empty() {
        return Err(SimError::InvalidFaults(problems));
    }
    recovery_loop(rec, crashes, |workload| {
        run(workload, pfs_cfg.clone(), options.clone())
    })
}

/// [`run_with_recovery`] over an arbitrary storage tier. With a
/// [`BackendConfig::Pfs`] tier this is equivalent to
/// [`run_with_recovery`]; with a burst-buffer tier absorbing the
/// checkpoint files, the foreground commit cost drops to log-append
/// speed and the checkpoint-interval U-curve flattens.
pub fn run_with_recovery_backend(
    rec: &Recoverable,
    crashes: &FaultSchedule,
    cfg: &BackendConfig,
    options: SimOptions,
) -> Result<RunResult, SimError> {
    // The object store has no I/O nodes; compute-crash validation
    // still applies against the application shape.
    let io_nodes = match cfg {
        BackendConfig::Pfs(c) => c.machine.io_nodes,
        BackendConfig::Burst(b) => b.pfs.machine.io_nodes,
        BackendConfig::Object(_) => 0,
    };
    let problems = crashes.validate_for(io_nodes, rec.workload().nodes);
    if !problems.is_empty() {
        return Err(SimError::InvalidFaults(problems));
    }
    recovery_loop(rec, crashes, |workload| {
        run_backend(workload, cfg, options.clone())
    })
}

/// The attempt/rollback loop, generic over how one attempt executes.
/// All recovery math (crash absorption, committed-marker rollback,
/// rework and byte accounting) lives here exactly once, so PFS-direct
/// and backend-routed recovery cannot drift apart.
fn recovery_loop(
    rec: &Recoverable,
    crashes: &FaultSchedule,
    mut attempt: impl FnMut(&Workload) -> Result<RunResult, SimError>,
) -> Result<RunResult, SimError> {
    let mut crash_list: Vec<(Time, Time)> = crashes
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            FaultKind::ComputeNodeCrash { rework, .. } => Some((ev.at, rework)),
            _ => None,
        })
        .collect();
    crash_list.sort();

    let ckpt_files: Vec<FileId> = rec.checkpoint_files().iter().map(|f| FileId(*f)).collect();
    let ckpt_writes_before = |r: &RunResult, cutoff: Time| -> u64 {
        r.trace
            .events()
            .iter()
            .filter(|e| e.kind == OpKind::Write && e.start < cutoff && ckpt_files.contains(&e.file))
            .map(|e| e.bytes)
            .sum()
    };

    let mut stats = RecoveryStats::default();
    let mut wall = Time::ZERO;
    let mut from: Option<u32> = None;
    let mut next = 0usize;
    loop {
        stats.attempts += 1;
        let workload = rec.slice_from(from);
        let mut result = attempt(&workload)?;
        let exec = result.exec_time;
        // Crashes at or before the attempt's launch instant fell into
        // the previous crash's rework window: absorbed.
        while next < crash_list.len() && crash_list[next].0 <= wall {
            next += 1;
        }
        if next >= crash_list.len() || crash_list[next].0 >= wall + exec {
            // The attempt outlives the crash schedule: done. A crash
            // at the exact completion instant strikes a finished
            // application.
            stats.time_to_solution = wall.saturating_add(exec);
            stats.checkpoint_write_bytes += ckpt_writes_before(&result, Time::MAX);
            result.recovery = stats;
            return Ok(result);
        }
        let (at, rework) = crash_list[next];
        next += 1;
        stats.crashes += 1;
        // The crash instant in this attempt's local clock.
        let local = at.saturating_sub(wall);
        // Latest marker committed strictly by the crash AND durable —
        // a commit whose bytes a burst-node crash destroyed while
        // resident in the log reports `Time::MAX` and can never be
        // rolled back to. Commit times are monotone in the marker
        // index within an attempt.
        let committed = result
            .checkpoint_commits
            .iter()
            .zip(result.durable_commits.iter())
            .rfind(|((_, t), (_, d))| *t <= local && *d <= local)
            .map(|((k, t), _)| (*k, *t));
        let base = committed.map(|(_, t)| t).unwrap_or(Time::ZERO);
        stats.rework += local.saturating_sub(base);
        stats.restart_latency += rework;
        stats.checkpoint_write_bytes += ckpt_writes_before(&result, local);
        // No marker committed this attempt → replay from wherever this
        // attempt itself started.
        let new_from = committed.map(|(k, _)| k).or(from);
        if new_from.is_some() {
            // The next attempt re-reads the checkpoint through the
            // restart prologue's PFS reads.
            stats.checkpoint_read_bytes += rec.prologue_read_bytes();
        }
        wall = at.saturating_add(rework);
        from = new_from;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_workloads::{CheckpointPolicy, EscatConfig, EscatVersion};

    fn tiny_pfs(nodes: u32) -> PfsConfig {
        let mut cfg = PfsConfig::tiny();
        cfg.machine.compute_nodes = nodes;
        cfg
    }

    fn crash_at(at: Time, rework: Time) -> FaultSchedule {
        let mut s = FaultSchedule::empty();
        s.push(at, FaultKind::ComputeNodeCrash { node: 0, rework });
        s
    }

    #[test]
    fn fault_free_recovery_equals_plain_run() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let plain = run(rec.workload(), tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        let recovered = run_with_recovery(
            &rec,
            &FaultSchedule::empty(),
            tiny_pfs(cfg.nodes),
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(recovered.exec_time, plain.exec_time);
        assert_eq!(recovered.trace.events(), plain.trace.events());
        assert_eq!(recovered.recovery.crashes, 0);
        assert_eq!(recovered.recovery.attempts, 1);
        assert_eq!(recovered.recovery.time_to_solution, plain.exec_time);
        assert!(recovered.recovery.rework.is_zero());
    }

    #[test]
    fn one_crash_costs_rework_and_restart() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = run_with_recovery(
            &rec,
            &FaultSchedule::empty(),
            tiny_pfs(cfg.nodes),
            SimOptions::default(),
        )
        .unwrap()
        .recovery
        .time_to_solution;
        let rework = Time::from_secs(2);
        let crashes = crash_at(baseline.scale(0.5), rework);
        let r =
            run_with_recovery(&rec, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        assert_eq!(r.recovery.crashes, 1);
        assert_eq!(r.recovery.attempts, 2);
        assert_eq!(r.recovery.restart_latency, rework);
        assert!(
            r.recovery.time_to_solution > baseline,
            "a mid-run crash must cost wall clock: {} vs {baseline}",
            r.recovery.time_to_solution
        );
        assert!(
            r.recovery.time_to_solution >= baseline.saturating_add(rework),
            "at minimum the rework latency is charged"
        );
    }

    #[test]
    fn checkpoints_bound_rework_versus_no_policy() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let none = cfg.recoverable(CheckpointPolicy::None);
        let fixed = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = run(none.workload(), tiny_pfs(cfg.nodes), SimOptions::default())
            .unwrap()
            .exec_time;
        // Crash late in the run: without checkpoints everything is
        // lost; with per-cycle commits only the tail is.
        let crashes = crash_at(baseline.scale(0.8), Time::from_secs(1));
        let r_none =
            run_with_recovery(&none, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        let r_fixed =
            run_with_recovery(&fixed, &crashes, tiny_pfs(cfg.nodes), SimOptions::default())
                .unwrap();
        assert_eq!(r_none.recovery.crashes, 1);
        assert_eq!(r_fixed.recovery.crashes, 1);
        assert!(
            r_none.recovery.rework > r_fixed.recovery.rework,
            "checkpoints must bound lost work: {} vs {}",
            r_none.recovery.rework,
            r_fixed.recovery.rework
        );
        assert!(
            r_fixed.recovery.checkpoint_read_bytes > 0,
            "a replay-from-marker attempt re-reads the checkpoint"
        );
        assert_eq!(r_none.recovery.checkpoint_read_bytes, 0);
    }

    #[test]
    fn same_seed_recovery_is_bit_identical() {
        let cfg = EscatConfig::tiny(EscatVersion::B);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = run(rec.workload(), tiny_pfs(cfg.nodes), SimOptions::default())
            .unwrap()
            .exec_time;
        let crashes = crash_at(baseline.scale(0.6), Time::from_secs(1));
        let a =
            run_with_recovery(&rec, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        let b =
            run_with_recovery(&rec, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.trace.events(), b.trace.events());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn backend_routed_recovery_matches_pfs_direct() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = run(rec.workload(), tiny_pfs(cfg.nodes), SimOptions::default())
            .unwrap()
            .exec_time;
        let crashes = crash_at(baseline.scale(0.6), Time::from_secs(1));
        let direct =
            run_with_recovery(&rec, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        let routed = run_with_recovery_backend(
            &rec,
            &crashes,
            &BackendConfig::Pfs(tiny_pfs(cfg.nodes)),
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(direct.recovery, routed.recovery);
        assert_eq!(direct.exec_time, routed.exec_time);
        assert_eq!(direct.trace.events(), routed.trace.events());
    }

    #[test]
    fn burst_buffer_cuts_foreground_checkpoint_cost() {
        use sioscope_pfs::BurstBufferConfig;
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let plain = run_with_recovery(
            &rec,
            &FaultSchedule::empty(),
            tiny_pfs(cfg.nodes),
            SimOptions::default(),
        )
        .unwrap();
        let burst_cfg = BackendConfig::Burst(BurstBufferConfig::absorbing(
            tiny_pfs(cfg.nodes),
            rec.checkpoint_files().to_vec(),
        ));
        let buffered = run_with_recovery_backend(
            &rec,
            &FaultSchedule::empty(),
            &burst_cfg,
            SimOptions::default(),
        )
        .unwrap();
        assert!(
            buffered.exec_time < plain.exec_time,
            "absorbing the checkpoint files must shed foreground commit cost: {} vs {}",
            buffered.exec_time,
            plain.exec_time
        );
        assert!(buffered.backend_stats.bytes_logged > 0);
        assert!(buffered.backend_stats.conserves_bytes());
    }

    #[test]
    fn invalid_crash_schedule_rejected_before_running() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::None);
        // Node 99 does not exist in an 8-node application.
        let mut s = FaultSchedule::empty();
        s.push(
            Time::from_secs(1),
            FaultKind::ComputeNodeCrash {
                node: 99,
                rework: Time::from_secs(1),
            },
        );
        let e =
            run_with_recovery(&rec, &s, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap_err();
        match e {
            SimError::InvalidFaults(problems) => {
                assert!(problems.iter().any(|p| p.contains("compute-crash")));
            }
            other => panic!("expected InvalidFaults, got {other}"),
        }
    }

    #[test]
    fn crashes_inside_rework_windows_are_absorbed() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let baseline = run(rec.workload(), tiny_pfs(cfg.nodes), SimOptions::default())
            .unwrap()
            .exec_time;
        let rework = Time::from_secs(30);
        let first = baseline.scale(0.5);
        let mut crashes = FaultSchedule::empty();
        crashes.push(first, FaultKind::ComputeNodeCrash { node: 0, rework });
        // Lands while the partition is still rebooting from the first.
        crashes.push(
            first.saturating_add(Time::from_secs(1)),
            FaultKind::ComputeNodeCrash { node: 1, rework },
        );
        let r =
            run_with_recovery(&rec, &crashes, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        assert_eq!(r.recovery.crashes, 1, "the second crash is absorbed");
        assert_eq!(r.recovery.attempts, 2);
    }
}
