//! # sioscope
//!
//! Reproduction of **Smirni, Aydt, Chien & Reed, "I/O Requirements of
//! Scientific Applications: An Evolutionary View" (HPDC 1996)** as a
//! deterministic simulation study.
//!
//! The paper instrumented two Scalable I/O Initiative applications —
//! ESCAT (electron scattering) and PRISM (3-D Navier–Stokes) — with
//! the Pablo performance environment and tracked how their I/O
//! behaviour evolved over eighteen months on the Caltech Intel Paragon
//! XP/S under Intel's Parallel File System. This crate is the glue
//! that re-runs that study on simulated hardware:
//!
//! * [`simulator`] executes a [`sioscope_workloads::Workload`] — one
//!   program per compute node — against a
//!   [`sioscope_pfs::Pfs`] instance, capturing a Pablo-style trace;
//! * [`experiments`] maps every table and figure of the paper to a
//!   runnable experiment;
//! * [`paper`] records the paper's published numbers so reports and
//!   tests can compare shape;
//! * [`report`] renders experiment output next to the paper's values.
//!
//! ## Quickstart
//!
//! ```
//! use sioscope::simulator::{run, SimOptions};
//! use sioscope_workloads::{EscatConfig, EscatVersion};
//! use sioscope_pfs::PfsConfig;
//! use sioscope_pfs::mode::OsRelease;
//!
//! let workload = EscatConfig::tiny(EscatVersion::C).build();
//! let pfs = PfsConfig::caltech(workload.nodes, OsRelease::Osf13);
//! let result = run(&workload, pfs, SimOptions::default()).unwrap();
//! assert!(result.exec_time > sioscope_sim::Time::ZERO);
//! assert!(!result.trace.is_empty());
//! ```

pub mod canon;
pub mod chaos;
pub mod coupled;
pub mod experiments;
pub mod paper;
pub mod recovery;
pub mod report;
pub mod schedule;
pub mod simulator;
pub mod sweeps;

pub use chaos::{chaos_case, chaos_soak, stream_chaos_case, ChaosTier, ChaosVerdict};
pub use coupled::{run_coupled, CoupledOutcome, FileRoute, Route};
pub use experiments::{Experiment, ExperimentOutput};
pub use recovery::{run_with_recovery, run_with_recovery_backend, RecoveryStats};
pub use schedule::{run_schedule, SchedError, ScheduleOutcome};
pub use simulator::{run, run_backend, RunResult, SimError, SimOptions};
