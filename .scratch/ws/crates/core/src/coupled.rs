//! Coupled producer–consumer pipelines: the in-transit alternative to
//! checkpoint-file hand-off.
//!
//! [`run_coupled`] co-schedules a producer job (a [`StreamCadence`],
//! e.g. PRISM's checkpoint bursts) with an in-situ analysis consumer
//! over one of two routes:
//!
//! - [`Route::Stream`] — a bounded staging-node channel with
//!   credit-based backpressure ([`StreamChannel`]). The producer
//!   blocks only when the queue is full; the consumer drains chunks as
//!   they become visible. A [`FaultKind::ConsumerCrash`] freezes the
//!   consumer, and the outage propagates to the producer *only*
//!   through backpressure.
//! - [`Route::File`] — the classic path: each burst is written to a
//!   PFS-class file, committed, and only then read back by the
//!   consumer. Writes serialize into the producer's timeline; a
//!   consumer crash delays the reads but (files being durable) never
//!   stalls the producer.
//!
//! Both drivers are pure single-pass recurrences over the shared
//! simulated timeline — no event queue, no RNG draws — so a seed's
//! coupled run replays bit-identically.

use crate::chaos::fnv64;
use sioscope_faults::{FaultKind, FaultSchedule, Tier};
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::{FileId, JobId, Pid, Time};
use sioscope_stream::{transfer_time, StagingConfig, StallCalendar, StreamChannel};
use sioscope_trace::{IoEvent, JobMap, TraceRecorder};
use sioscope_workloads::StreamCadence;

/// Consumer analysis bandwidth at 100% speed: how fast the in-situ
/// analysis digests staged bytes.
pub const ANALYZE_BW: u64 = 8_000_000;

/// The file-based hand-off route: PFS-class service rates for the
/// checkpoint files the producer writes and the consumer reads back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileRoute {
    /// Producer-side write bandwidth (bytes/s).
    pub write_bw: u64,
    /// Consumer-side read bandwidth (bytes/s).
    pub read_bw: u64,
    /// Fixed per-operation latency (request setup, server round trip).
    pub op_latency: Time,
    /// Commit/flush latency paid once per burst before the data is
    /// visible to the consumer.
    pub commit_latency: Time,
}

impl FileRoute {
    /// Caltech-class service rates: the Paragon PFS sustained a few
    /// MB/s per client with half-millisecond operation overheads.
    pub fn caltech_class() -> Self {
        FileRoute {
            write_bw: 4_000_000,
            read_bw: 6_000_000,
            op_latency: Time::from_nanos(500_000),
            commit_latency: Time::from_millis(5),
        }
    }

    /// Structural problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.write_bw == 0 || self.read_bw == 0 {
            problems.push("file route bandwidths must be positive".into());
        }
        problems
    }
}

/// How the producer's bursts reach the consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// In-transit staging channel with bounded depth and backpressure.
    Stream(StagingConfig),
    /// Write-to-file, commit, read-back.
    File(FileRoute),
}

/// Everything a coupled run measures.
#[derive(Debug, Clone)]
pub struct CoupledOutcome {
    /// When the producer finished its last burst (compute + hand-off).
    pub producer_finish: Time,
    /// When the consumer finished analyzing the last chunk.
    pub consumer_finish: Time,
    /// End-to-end pipeline latency: the later of the two finishes.
    pub pipeline_latency: Time,
    /// Total time the producer spent blocked on a full staging queue
    /// (always zero on the file route).
    pub producer_stall: Time,
    /// Total time the consumer spent idle waiting for data.
    pub consumer_wait: Time,
    /// Chunks delivered end to end.
    pub chunks: u64,
    /// Bytes delivered end to end.
    pub bytes: u64,
    /// Peak staging-queue occupancy in bytes (zero on the file route).
    pub peak_occupancy: u64,
    /// Queue-occupancy timeline `(instant, resident bytes)` after each
    /// admit/retire (empty on the file route).
    pub occupancy: Vec<(Time, u64)>,
    /// Did the channel ledger conserve bytes end to end?
    pub conserves: bool,
    /// Mesh hops the route traverses (stream route only).
    pub hops: u32,
    /// The coupled I/O trace: producer writes and consumer reads on
    /// the shared timeline.
    pub trace: TraceRecorder,
    /// Job attribution: job 0 = producer pids `[0, nodes)`, job 1 =
    /// the consumer pid `nodes`.
    pub jobs: JobMap,
}

impl CoupledOutcome {
    /// Replay-checkable digest: finishes, stall, chunk ledger, and an
    /// FNV-64 over the binary trace.
    pub fn fingerprint(&self) -> String {
        let trace_bytes = sioscope_trace::binary::encode(&self.trace);
        format!(
            "{} {} {} {} {} {:016x}",
            self.producer_finish.as_nanos(),
            self.consumer_finish.as_nanos(),
            self.producer_stall.as_nanos(),
            self.chunks,
            self.bytes,
            fnv64(&trace_bytes)
        )
    }
}

/// Consumer analysis time for `bytes` at `speed_pct` percent of
/// [`ANALYZE_BW`], exact in integer nanoseconds.
fn analyze_time(bytes: u64, speed_pct: u32) -> Time {
    let num = u128::from(bytes) * 1_000_000_000u128 * 100;
    let den = u128::from(ANALYZE_BW) * u128::from(speed_pct.max(1));
    Time::from_nanos(num.div_ceil(den).min(u128::from(u64::MAX)) as u64)
}

/// The consumer-outage calendar a stream-tier fault schedule encodes.
fn outage_calendar(faults: &FaultSchedule) -> StallCalendar {
    let windows: Vec<(Time, Time)> = faults
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            FaultKind::ConsumerCrash { stall } => Some((ev.at, stall)),
            _ => None,
        })
        .collect();
    StallCalendar::new(&windows)
}

/// Drive one coupled producer–consumer pipeline to completion.
///
/// `faults` must validate on the stream tier
/// ([`FaultSchedule::validate_for_tier`]); the consumer-crash windows
/// it carries freeze the consumer's drain starts on either route.
/// Errors (rather than panicking) on invalid cadences, routes, or
/// fault schedules, quoting every problem.
pub fn run_coupled(
    cadence: &StreamCadence,
    route: &Route,
    consumer_speed_pct: u32,
    faults: &FaultSchedule,
) -> Result<CoupledOutcome, String> {
    let mut problems = cadence.validate();
    if consumer_speed_pct == 0 {
        problems.push("consumer speed must be positive".into());
    }
    match route {
        Route::Stream(cfg) => problems.extend(cfg.validate(cadence.max_chunk())),
        Route::File(fr) => problems.extend(fr.validate()),
    }
    problems.extend(faults.validate_for_tier(Tier::Stream, 0, cadence.nodes));
    if !problems.is_empty() {
        return Err(problems.join("; "));
    }

    let outages = outage_calendar(faults);
    let mut jobs = JobMap::new();
    jobs.insert(0, cadence.nodes, JobId(0));
    jobs.insert(cadence.nodes, cadence.nodes + 1, JobId(1));
    let consumer_pid = Pid(cadence.nodes);

    let outcome = match route {
        Route::Stream(cfg) => {
            drive_stream(cadence, cfg, consumer_speed_pct, &outages, consumer_pid)
        }
        Route::File(fr) => drive_file(cadence, fr, consumer_speed_pct, &outages, consumer_pid),
    };
    Ok(CoupledOutcome { jobs, ..outcome })
}

fn drive_stream(
    cadence: &StreamCadence,
    cfg: &StagingConfig,
    speed_pct: u32,
    outages: &StallCalendar,
    consumer_pid: Pid,
) -> CoupledOutcome {
    let mut channel = StreamChannel::new(cfg.clone());
    let mut trace = TraceRecorder::new();
    let mut now = Time::ZERO; // producer clock
    let mut free = Time::ZERO; // consumer clock
    let mut consumer_wait = Time::ZERO;
    let mut consumer_finish = Time::ZERO;

    for burst in &cadence.bursts {
        now += burst.compute;
        for &bytes in &burst.chunks {
            let p = channel.push(now, bytes);
            trace.record(IoEvent {
                pid: Pid(0),
                file: FileId(0),
                kind: OpKind::Write,
                start: now,
                duration: p.send_done.saturating_sub(now),
                bytes,
                offset: 0,
                mode: IoMode::MAsync,
            });
            now = p.send_done;

            // Strict alternation: the consumer drains this chunk as
            // soon as it is both visible and (outages permitting)
            // awake. Its clock trails the producer's, so this take
            // never depends on a later push.
            let ready = free.max(p.ready_at);
            let start = outages.next_free(ready);
            if start > free {
                consumer_wait += start - free;
            }
            let t = channel.take(start);
            let done = t.egress_done + analyze_time(bytes, speed_pct);
            trace.record(IoEvent {
                pid: consumer_pid,
                file: FileId(0),
                kind: OpKind::Read,
                start,
                duration: t.egress_done.saturating_sub(start),
                bytes,
                offset: 0,
                mode: IoMode::MAsync,
            });
            free = done;
            consumer_finish = done;
        }
    }

    let stats = channel.stats().clone();
    trace.sort();
    CoupledOutcome {
        producer_finish: now,
        consumer_finish,
        pipeline_latency: now.max(consumer_finish),
        producer_stall: stats.producer_stall,
        consumer_wait,
        chunks: stats.egressed_chunks,
        bytes: stats.egressed_bytes,
        peak_occupancy: channel.peak_occupancy(),
        occupancy: channel.occupancy_timeline(),
        conserves: channel.conserves(),
        hops: cfg.hops,
        trace,
        jobs: JobMap::new(),
    }
}

fn drive_file(
    cadence: &StreamCadence,
    fr: &FileRoute,
    speed_pct: u32,
    outages: &StallCalendar,
    consumer_pid: Pid,
) -> CoupledOutcome {
    let mut trace = TraceRecorder::new();
    let mut now = Time::ZERO; // producer clock
    let mut free = Time::ZERO; // consumer clock
    let mut consumer_wait = Time::ZERO;
    let mut consumer_finish = Time::ZERO;
    let mut chunks = 0u64;
    let mut bytes_total = 0u64;

    for burst in &cadence.bursts {
        now += burst.compute;
        // Producer: write every chunk, then one commit per burst.
        for &bytes in &burst.chunks {
            let dur = fr.op_latency + transfer_time(bytes, fr.write_bw);
            trace.record(IoEvent {
                pid: Pid(0),
                file: FileId(0),
                kind: OpKind::Write,
                start: now,
                duration: dur,
                bytes,
                offset: 0,
                mode: IoMode::MUnix,
            });
            now += dur;
        }
        let visible = now + fr.commit_latency;
        now = visible;
        // Consumer: the burst becomes readable only at commit.
        for &bytes in &burst.chunks {
            let ready = free.max(visible);
            let start = outages.next_free(ready);
            if start > free {
                consumer_wait += start - free;
            }
            let read = fr.op_latency + transfer_time(bytes, fr.read_bw);
            trace.record(IoEvent {
                pid: consumer_pid,
                file: FileId(0),
                kind: OpKind::Read,
                start,
                duration: read,
                bytes,
                offset: 0,
                mode: IoMode::MUnix,
            });
            let done = start + read + analyze_time(bytes, speed_pct);
            free = done;
            consumer_finish = done;
            chunks += 1;
            bytes_total += bytes;
        }
    }

    trace.sort();
    CoupledOutcome {
        producer_finish: now,
        consumer_finish,
        pipeline_latency: now.max(consumer_finish),
        producer_stall: Time::ZERO,
        consumer_wait,
        chunks,
        bytes: bytes_total,
        peak_occupancy: 0,
        occupancy: Vec::new(),
        conserves: true,
        hops: 0,
        trace,
        jobs: JobMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_faults::FaultEvent;
    use sioscope_workloads::{PrismConfig, PrismVersion};

    fn tiny_cadence() -> StreamCadence {
        PrismConfig::tiny(PrismVersion::C).stream_cadence()
    }

    fn stream_route(depth: u64) -> Route {
        Route::Stream(StagingConfig::paragon(depth))
    }

    #[test]
    fn stream_beats_file_at_adequate_depth() {
        let c = tiny_cadence();
        let s = run_coupled(&c, &stream_route(0), 100, &FaultSchedule::empty()).unwrap();
        let f = run_coupled(
            &c,
            &Route::File(FileRoute::caltech_class()),
            100,
            &FaultSchedule::empty(),
        )
        .unwrap();
        assert!(
            s.pipeline_latency < f.pipeline_latency,
            "stream {} !< file {}",
            s.pipeline_latency,
            f.pipeline_latency
        );
        assert_eq!(s.producer_stall, Time::ZERO);
        assert_eq!(s.bytes, c.total_bytes());
        assert_eq!(f.bytes, c.total_bytes());
        assert!(s.conserves && f.conserves);
    }

    #[test]
    fn undersized_depth_stalls_the_producer() {
        let c = tiny_cadence();
        let roomy =
            run_coupled(&c, &stream_route(256 * 1024), 100, &FaultSchedule::empty()).unwrap();
        let tight =
            run_coupled(&c, &stream_route(16 * 1024), 100, &FaultSchedule::empty()).unwrap();
        assert_eq!(roomy.producer_stall, Time::ZERO);
        assert!(tight.producer_stall > Time::ZERO);
        assert!(tight.producer_finish > roomy.producer_finish);
        assert!(tight.peak_occupancy <= 16 * 1024);
    }

    #[test]
    fn consumer_crash_backpressures_the_producer() {
        let c = tiny_cadence();
        let clean =
            run_coupled(&c, &stream_route(256 * 1024), 100, &FaultSchedule::empty()).unwrap();
        let mut faults = FaultSchedule::empty();
        faults.events.push(FaultEvent {
            at: Time::ZERO,
            kind: FaultKind::ConsumerCrash {
                stall: clean.pipeline_latency,
            },
        });
        let crashed = run_coupled(&c, &stream_route(256 * 1024), 100, &faults).unwrap();
        assert!(crashed.producer_stall > Time::ZERO, "{crashed:?}");
        assert!(crashed.pipeline_latency > clean.pipeline_latency);
        assert!(crashed.consumer_wait > clean.consumer_wait);
        // Durable files decouple: the same outage stalls the file
        // route's consumer but never its producer.
        let f = run_coupled(&c, &Route::File(FileRoute::caltech_class()), 100, &faults).unwrap();
        assert_eq!(f.producer_stall, Time::ZERO);
        assert!(f.consumer_wait > Time::ZERO);
    }

    #[test]
    fn replay_is_bit_identical() {
        let c = tiny_cadence();
        for route in [
            stream_route(32 * 1024),
            Route::File(FileRoute::caltech_class()),
        ] {
            let a = run_coupled(&c, &route, 75, &FaultSchedule::empty()).unwrap();
            let b = run_coupled(&c, &route, 75, &FaultSchedule::empty()).unwrap();
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(a.trace.events(), b.trace.events());
            assert_eq!(a.occupancy, b.occupancy);
            assert_eq!(a.consumer_wait, b.consumer_wait);
            assert_eq!(a.jobs, b.jobs);
        }
    }

    #[test]
    fn trace_attributes_jobs_and_kinds() {
        let c = tiny_cadence();
        let s = run_coupled(&c, &stream_route(0), 100, &FaultSchedule::empty()).unwrap();
        let idx = sioscope_trace::TraceIndex::build_with_jobs(s.trace.events(), &s.jobs);
        let total = c.total_chunks() as usize;
        assert_eq!(idx.job_event_count(JobId(0)), total, "producer writes");
        assert_eq!(idx.job_event_count(JobId(1)), total, "consumer reads");
        assert_eq!(idx.count_of(OpKind::Write), total as u64);
        assert_eq!(idx.count_of(OpKind::Read), total as u64);
        assert_eq!(idx.bytes_of(OpKind::Write), c.total_bytes());
    }

    #[test]
    fn bad_inputs_error_with_every_problem() {
        let c = tiny_cadence();
        // Depth below the largest chunk.
        let err = run_coupled(&c, &stream_route(100), 100, &FaultSchedule::empty()).unwrap_err();
        assert!(err.contains("depth"), "{err}");
        // Cross-tier fault.
        let mut faults = FaultSchedule::empty();
        faults.events.push(FaultEvent {
            at: Time::ZERO,
            kind: FaultKind::DrainStall {
                duration: Time::from_secs(1),
            },
        });
        let err = run_coupled(&c, &stream_route(0), 100, &faults).unwrap_err();
        assert!(err.contains("drain-stall"), "{err}");
        // Zero consumer speed.
        let err = run_coupled(&c, &stream_route(0), 0, &FaultSchedule::empty()).unwrap_err();
        assert!(err.contains("consumer speed"), "{err}");
    }

    #[test]
    fn occupancy_timeline_tracks_the_queue() {
        let c = tiny_cadence();
        let s = run_coupled(&c, &stream_route(64 * 1024), 100, &FaultSchedule::empty()).unwrap();
        assert!(!s.occupancy.is_empty());
        assert!(s.peak_occupancy > 0);
        assert!(s.peak_occupancy <= 64 * 1024);
        assert_eq!(s.occupancy.last().unwrap().1, 0, "queue drains to empty");
    }
}
