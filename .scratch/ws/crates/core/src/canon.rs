//! The canonical run surface: stable string ids for workloads,
//! scheduler policies and scales, and the run entry points that turn
//! one resolved id tuple into *integer* metrics.
//!
//! This is the boundary the campaign engine's content-addressed cache
//! is built on. Everything here is deliberately narrow:
//!
//! * ids are stable strings — they appear in `campaign.toml`, in
//!   canonical config lines, and therefore inside content addresses,
//!   so renaming one orphans cached results and must be treated as a
//!   breaking change;
//! * metrics are integers only (nanoseconds, counts, fixed-point
//!   milli/micro units). Floats would make "bit-identical report"
//!   hostage to formatting; integers make it trivially true.

use std::collections::BTreeMap;

use crate::coupled::{run_coupled, Route};
use crate::experiments::contention::{
    contended_machine, mix_stream, run_stream, CLASS_TAU, COMPUTE_BOUND, IO_BOUND,
};
use crate::experiments::Scale;
use crate::simulator::{run, run_backend, SimOptions};
use sioscope_faults::{FaultGen, FaultSchedule};
pub use sioscope_pfs::BackendKind;
use sioscope_pfs::{BackendConfig, BurstBufferConfig, ObjectStoreConfig, PfsConfig};
use sioscope_sched::QueuePolicy;
use sioscope_sim::Time;
use sioscope_stream::StagingConfig;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};

/// The workloads addressable by id: every ESCAT and PRISM code
/// version the paper tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WorkloadId {
    EscatA,
    EscatA2,
    EscatB,
    EscatB2,
    EscatB3,
    EscatC,
    PrismA,
    PrismB,
    PrismC,
}

impl WorkloadId {
    /// All workload ids, in presentation order.
    pub fn all() -> Vec<WorkloadId> {
        use WorkloadId::*;
        vec![
            EscatA, EscatA2, EscatB, EscatB2, EscatB3, EscatC, PrismA, PrismB, PrismC,
        ]
    }

    /// Stable string id (spec files, canonical config lines).
    pub fn id(self) -> &'static str {
        use WorkloadId::*;
        match self {
            EscatA => "escat-a",
            EscatA2 => "escat-a2",
            EscatB => "escat-b",
            EscatB2 => "escat-b2",
            EscatB3 => "escat-b3",
            EscatC => "escat-c",
            PrismA => "prism-a",
            PrismB => "prism-b",
            PrismC => "prism-c",
        }
    }

    /// Parse a stable id.
    pub fn from_id(id: &str) -> Option<WorkloadId> {
        WorkloadId::all().into_iter().find(|w| w.id() == id)
    }

    /// Build the workload at a scale: the paper's problem sizes at
    /// [`Scale::Full`], the proportionally shrunk `tiny` datasets at
    /// [`Scale::Smoke`].
    pub fn build(self, scale: Scale) -> Workload {
        use WorkloadId::*;
        let escat = |v: EscatVersion| match scale {
            Scale::Smoke => EscatConfig::tiny(v).build(),
            Scale::Full => EscatConfig::ethylene(v).build(),
        };
        let prism = |v: PrismVersion| match scale {
            Scale::Smoke => PrismConfig::tiny(v).build(),
            Scale::Full => PrismConfig::test_problem(v).build(),
        };
        match self {
            EscatA => escat(EscatVersion::A),
            EscatA2 => escat(EscatVersion::A2),
            EscatB => escat(EscatVersion::B),
            EscatB2 => escat(EscatVersion::B2),
            EscatB3 => escat(EscatVersion::B3),
            EscatC => escat(EscatVersion::C),
            PrismA => prism(PrismVersion::A),
            PrismB => prism(PrismVersion::B),
            PrismC => prism(PrismVersion::C),
        }
    }
}

/// The scheduler policies addressable by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PolicyId {
    Fcfs,
    EasyBackfill,
}

impl PolicyId {
    /// All policy ids.
    pub fn all() -> Vec<PolicyId> {
        vec![PolicyId::Fcfs, PolicyId::EasyBackfill]
    }

    /// Stable string id.
    pub fn id(self) -> &'static str {
        match self {
            PolicyId::Fcfs => "fcfs",
            PolicyId::EasyBackfill => "easy-backfill",
        }
    }

    /// Parse a stable id.
    pub fn from_id(id: &str) -> Option<PolicyId> {
        PolicyId::all().into_iter().find(|p| p.id() == id)
    }

    /// The scheduler policy this id names.
    pub fn queue_policy(self) -> QueuePolicy {
        match self {
            PolicyId::Fcfs => QueuePolicy::Fcfs,
            PolicyId::EasyBackfill => QueuePolicy::EasyBackfill,
        }
    }
}

/// Stable string id of a scale.
pub fn scale_id(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Full => "full",
    }
}

/// Parse a scale id.
pub fn scale_from_id(id: &str) -> Option<Scale> {
    match id {
        "smoke" => Some(Scale::Smoke),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Round a nonnegative float into fixed-point thousandths.
fn milli(x: f64) -> u64 {
    (x.max(0.0) * 1_000.0).round() as u64
}

/// Round nonnegative seconds into whole microseconds.
fn micros(secs: f64) -> u64 {
    (secs.max(0.0) * 1_000_000.0).round() as u64
}

/// Simulate one workload end-to-end on its Caltech machine, with
/// `fault_events` injected I/O-node faults drawn from `seed`, and
/// reduce the run to integer metrics.
///
/// The fault horizon is the workload's own fault-free execution time
/// (mirroring the `fault_intensity` sweep), so the fault-free
/// baseline is simulated first whenever `fault_events > 0`.
pub fn workload_run(
    id: WorkloadId,
    scale: Scale,
    fault_events: u32,
    seed: u64,
) -> Result<BTreeMap<String, u64>, String> {
    let workload = id.build(scale);
    let cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let cfg = if fault_events == 0 {
        cfg
    } else {
        let horizon = run(&workload, cfg.clone(), SimOptions::default())
            .map_err(|e| format!("{} fault-free baseline: {e}", id.id()))?
            .exec_time;
        let mut faulty = cfg;
        faulty.faults = FaultGen::new(seed, horizon, faulty.machine.io_nodes)
            .with_events(fault_events as usize)
            .schedule();
        faulty
    };
    let result =
        run(&workload, cfg, SimOptions::default()).map_err(|e| format!("{}: {e}", id.id()))?;
    Ok(BTreeMap::from([
        ("exec_time_ns".to_string(), result.exec_time.as_nanos()),
        ("io_time_ns".to_string(), result.total_io_time().as_nanos()),
        ("events".to_string(), result.events),
        ("fault_transitions".to_string(), result.fault_transitions),
        ("trace_events".to_string(), result.trace.len() as u64),
    ]))
}

/// Simulate one workload on a named storage tier and reduce the run
/// to integer metrics.
///
/// The `pfs` tier delegates to [`workload_run`] verbatim, so its
/// metrics (and therefore its content addresses' *values*) are
/// bit-identical to the pre-backend path. The `object` tier adds
/// `puts`/`gets` counters; `fault_events > 0` draws *object-tier*
/// faults (metadata-shard outages, degraded-service windows) from the
/// seed's object stream. The `burst` tier absorbs every file into the
/// host-side log over the same Caltech PFS and adds the drain
/// accounting counters; `fault_events > 0` draws *burst-tier* faults
/// (drain stalls, burst-node crashes) from the seed's burst stream.
/// Either way the fault horizon is the same-tier fault-free execution
/// time, mirroring the PFS path.
pub fn workload_run_backend(
    id: WorkloadId,
    scale: Scale,
    backend: BackendKind,
    fault_events: u32,
    seed: u64,
) -> Result<BTreeMap<String, u64>, String> {
    if backend == BackendKind::Pfs {
        return workload_run(id, scale, fault_events, seed);
    }
    let workload = id.build(scale);
    // The fault horizon is the tier's own fault-free execution time.
    let horizon = |base: &BackendConfig| -> Result<Time, String> {
        run_backend(&workload, base, SimOptions::default())
            .map(|r| r.exec_time)
            .map_err(|e| format!("{} fault-free baseline: {e}", id.id()))
    };
    let cfg = match backend {
        BackendKind::Pfs => unreachable!("handled above"),
        BackendKind::Object => {
            let mut obj = ObjectStoreConfig::modern(workload.nodes);
            if fault_events > 0 {
                let h = horizon(&BackendConfig::Object(obj.clone()))?;
                obj.faults = FaultGen::new(seed, h, workload.nodes)
                    .with_events(fault_events as usize)
                    .object_schedule(obj.md_shards.max(1) as u32);
            }
            BackendConfig::Object(obj)
        }
        BackendKind::Burst => {
            let pfs = PfsConfig::caltech(workload.nodes, workload.os);
            let mut burst = BurstBufferConfig::over(pfs);
            if fault_events > 0 {
                let h = horizon(&BackendConfig::Burst(burst.clone()))?;
                burst.faults = FaultGen::new(seed, h, burst.pfs.machine.io_nodes)
                    .with_events(fault_events as usize)
                    .burst_schedule();
            }
            BackendConfig::Burst(burst)
        }
    };
    let result = run_backend(&workload, &cfg, SimOptions::default())
        .map_err(|e| format!("{}: {e}", id.id()))?;
    let mut metrics = BTreeMap::from([
        ("exec_time_ns".to_string(), result.exec_time.as_nanos()),
        ("io_time_ns".to_string(), result.total_io_time().as_nanos()),
        ("events".to_string(), result.events),
        ("fault_transitions".to_string(), result.fault_transitions),
        ("trace_events".to_string(), result.trace.len() as u64),
    ]);
    let s = result.backend_stats;
    match backend {
        BackendKind::Pfs => {}
        BackendKind::Object => {
            metrics.insert("puts".to_string(), s.puts);
            metrics.insert("gets".to_string(), s.gets);
        }
        BackendKind::Burst => {
            metrics.insert("bytes_logged".to_string(), s.bytes_logged);
            metrics.insert("bytes_drained".to_string(), s.bytes_drained);
            metrics.insert("bytes_resident".to_string(), s.bytes_resident);
            metrics.insert("absorbed_ops".to_string(), s.absorbed_ops);
            metrics.insert("drain_complete_ns".to_string(), s.drain_complete.as_nanos());
            if fault_events > 0 {
                metrics.insert("bytes_lost".to_string(), s.bytes_lost);
            }
        }
    }
    if fault_events > 0 {
        metrics.insert(
            "resilience_actions".to_string(),
            result.resilience.total_actions(),
        );
    }
    Ok(metrics)
}

/// Run the coupled PRISM streaming pipeline over a bounded staging
/// channel and reduce it to integer metrics.
///
/// `depth_kib` is the staging queue depth in KiB, with `0` meaning
/// unbounded; `consumer_pct` scales the consumer's analysis speed
/// (100 = the reference in-situ analyzer, 50 = half speed). `seed`
/// perturbs the producer's checkpoint cadence the same way it
/// perturbs [`workload_run`]'s workload build: it is XOR-folded into
/// the PRISM config's own seed, so `0` is the canonical cadence.
pub fn stream_run(
    depth_kib: u32,
    consumer_pct: u32,
    seed: u64,
    scale: Scale,
) -> Result<BTreeMap<String, u64>, String> {
    let mut cfg = match scale {
        Scale::Smoke => PrismConfig::tiny(PrismVersion::C),
        Scale::Full => PrismConfig::test_problem(PrismVersion::C),
    };
    cfg.seed ^= seed;
    let cadence = cfg.stream_cadence();
    let route = Route::Stream(StagingConfig::paragon(u64::from(depth_kib) * 1024));
    let o = run_coupled(&cadence, &route, consumer_pct, &FaultSchedule::empty())?;
    Ok(BTreeMap::from([
        (
            "pipeline_latency_ns".to_string(),
            o.pipeline_latency.as_nanos(),
        ),
        ("producer_stall_ns".to_string(), o.producer_stall.as_nanos()),
        ("consumer_wait_ns".to_string(), o.consumer_wait.as_nanos()),
        (
            "producer_finish_ns".to_string(),
            o.producer_finish.as_nanos(),
        ),
        ("chunks".to_string(), o.chunks),
        ("bytes".to_string(), o.bytes),
        ("peak_occupancy".to_string(), o.peak_occupancy),
        ("trace_events".to_string(), o.trace.len() as u64),
    ]))
}

/// Schedule the contention-mix stream on the shared machine under one
/// policy, at a load factor given in percent of the reference arrival
/// rate (200% = jobs arrive twice as fast), and reduce the outcome to
/// integer metrics. `seed` perturbs the job stream; `0` is the
/// canonical stream the contention experiments use.
pub fn contention_run(
    policy: PolicyId,
    scale: Scale,
    load_pct: u32,
    seed: u64,
) -> Result<BTreeMap<String, u64>, String> {
    const REFERENCE_INTERARRIVAL_NS: u64 = 20_000_000;
    if load_pct == 0 {
        return Err("load_pct must be >= 1".to_string());
    }
    let interarrival = Time::from_nanos(REFERENCE_INTERARRIVAL_NS * 100 / u64::from(load_pct));
    let mut stream = mix_stream(scale, interarrival);
    stream.seed ^= seed;
    let out = run_stream(
        &stream,
        policy.queue_policy(),
        contended_machine(scale),
        policy.id(),
    );
    let io_bsld = out.stats.mean_bounded_slowdown_of(IO_BOUND, CLASS_TAU);
    let cpu_bsld = out.stats.mean_bounded_slowdown_of(COMPUTE_BOUND, CLASS_TAU);
    Ok(BTreeMap::from([
        ("makespan_ns".to_string(), out.stats.makespan.as_nanos()),
        (
            "io_time_ns".to_string(),
            out.trace.total_io_time().as_nanos(),
        ),
        ("events".to_string(), out.stats.total_events),
        ("jobs".to_string(), out.stats.jobs.len() as u64),
        ("mean_wait_us".to_string(), micros(out.stats.mean_wait())),
        ("io_bsld_milli".to_string(), milli(io_bsld.unwrap_or(0.0))),
        ("cpu_bsld_milli".to_string(), milli(cpu_bsld.unwrap_or(0.0))),
        ("fault_transitions".to_string(), out.fault_transitions),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for w in WorkloadId::all() {
            assert_eq!(WorkloadId::from_id(w.id()), Some(w));
        }
        for p in PolicyId::all() {
            assert_eq!(PolicyId::from_id(p.id()), Some(p));
        }
        assert_eq!(WorkloadId::from_id("escat-z"), None);
        assert_eq!(PolicyId::from_id("sjf"), None);
        for s in [Scale::Smoke, Scale::Full] {
            assert_eq!(scale_from_id(scale_id(s)), Some(s));
        }
        assert_eq!(scale_from_id("huge"), None);
    }

    #[test]
    fn workload_runs_are_deterministic_integer_metrics() {
        let a = workload_run(WorkloadId::EscatB, Scale::Smoke, 0, 0).unwrap();
        let b = workload_run(WorkloadId::EscatB, Scale::Smoke, 0, 0).unwrap();
        assert_eq!(a, b);
        assert!(a["exec_time_ns"] > 0);
        assert!(a["events"] > 0);
        assert_eq!(a["fault_transitions"], 0);
    }

    #[test]
    fn fault_injection_engages_the_calendar() {
        let faulty = workload_run(WorkloadId::PrismA, Scale::Smoke, 2, 0xF417).unwrap();
        assert!(faulty["fault_transitions"] > 0, "{faulty:?}");
        let clean = workload_run(WorkloadId::PrismA, Scale::Smoke, 0, 0xF417).unwrap();
        assert!(faulty["exec_time_ns"] >= clean["exec_time_ns"]);
    }

    #[test]
    fn pfs_tier_is_the_legacy_entry_point() {
        let direct = workload_run(WorkloadId::EscatB, Scale::Smoke, 2, 0xF417).unwrap();
        let routed = workload_run_backend(
            WorkloadId::EscatB,
            Scale::Smoke,
            BackendKind::Pfs,
            2,
            0xF417,
        )
        .unwrap();
        assert_eq!(direct, routed);
    }

    #[test]
    fn tiers_are_deterministic_and_distinct() {
        for backend in [BackendKind::Object, BackendKind::Burst] {
            let a = workload_run_backend(WorkloadId::PrismA, Scale::Smoke, backend, 0, 0).unwrap();
            let b = workload_run_backend(WorkloadId::PrismA, Scale::Smoke, backend, 0, 0).unwrap();
            assert_eq!(a, b, "{backend} must be deterministic");
        }
        let pfs =
            workload_run_backend(WorkloadId::PrismA, Scale::Smoke, BackendKind::Pfs, 0, 0).unwrap();
        let object =
            workload_run_backend(WorkloadId::PrismA, Scale::Smoke, BackendKind::Object, 0, 0)
                .unwrap();
        let burst =
            workload_run_backend(WorkloadId::PrismA, Scale::Smoke, BackendKind::Burst, 0, 0)
                .unwrap();
        assert!(object.contains_key("puts") && object.contains_key("gets"));
        assert!(burst.contains_key("bytes_logged"));
        assert_eq!(burst["bytes_logged"], burst["bytes_drained"]);
        assert_ne!(pfs["exec_time_ns"], object["exec_time_ns"]);
        assert_ne!(pfs["exec_time_ns"], burst["exec_time_ns"]);
    }

    #[test]
    fn object_tier_takes_object_faults() {
        let faulty = workload_run_backend(
            WorkloadId::EscatB,
            Scale::Smoke,
            BackendKind::Object,
            3,
            0xF417,
        )
        .unwrap();
        assert!(faulty["fault_transitions"] > 0, "{faulty:?}");
        assert!(faulty.contains_key("resilience_actions"), "{faulty:?}");
        let clean =
            workload_run_backend(WorkloadId::EscatB, Scale::Smoke, BackendKind::Object, 0, 0)
                .unwrap();
        assert!(faulty["exec_time_ns"] >= clean["exec_time_ns"]);
        assert!(!clean.contains_key("resilience_actions"));
    }

    #[test]
    fn burst_tier_takes_burst_faults() {
        let faulty = workload_run_backend(
            WorkloadId::PrismA,
            Scale::Smoke,
            BackendKind::Burst,
            2,
            0xF417,
        )
        .unwrap();
        assert!(faulty["fault_transitions"] > 0, "{faulty:?}");
        assert!(
            faulty.contains_key("bytes_lost"),
            "faulted burst runs report the loss ledger: {faulty:?}"
        );
        assert_eq!(
            faulty["bytes_logged"],
            faulty["bytes_drained"] + faulty["bytes_resident"] + faulty["bytes_lost"],
            "conservation law: {faulty:?}"
        );
    }

    #[test]
    fn stream_runs_are_deterministic_integer_metrics() {
        let a = stream_run(256, 100, 0, Scale::Smoke).unwrap();
        let b = stream_run(256, 100, 0, Scale::Smoke).unwrap();
        assert_eq!(a, b);
        assert!(a["pipeline_latency_ns"] > 0);
        assert!(a["chunks"] > 0);
        assert!(a["trace_events"] == 2 * a["chunks"]);
        // Unbounded depth never stalls; a reseeded cadence differs.
        let unbounded = stream_run(0, 100, 0, Scale::Smoke).unwrap();
        assert_eq!(unbounded["producer_stall_ns"], 0);
        let reseeded = stream_run(256, 100, 7, Scale::Smoke).unwrap();
        assert_ne!(a, reseeded, "seed must perturb the cadence");
        // A throttled consumer shifts the metrics on the same cadence.
        let slow = stream_run(256, 50, 0, Scale::Smoke).unwrap();
        assert!(slow["pipeline_latency_ns"] >= a["pipeline_latency_ns"]);
        assert!(stream_run(256, 0, 0, Scale::Smoke).is_err());
    }

    #[test]
    fn contention_runs_are_deterministic_and_seed_sensitive() {
        let a = contention_run(PolicyId::Fcfs, Scale::Smoke, 100, 0).unwrap();
        let b = contention_run(PolicyId::Fcfs, Scale::Smoke, 100, 0).unwrap();
        assert_eq!(a, b);
        assert!(a["makespan_ns"] > 0);
        assert_eq!(a["jobs"], 8);
        let reseeded = contention_run(PolicyId::Fcfs, Scale::Smoke, 100, 7).unwrap();
        assert_ne!(a, reseeded, "seed must perturb the stream");
        assert!(contention_run(PolicyId::Fcfs, Scale::Smoke, 0, 0).is_err());
    }
}
