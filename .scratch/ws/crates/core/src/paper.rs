//! The paper's published numbers, transcribed for comparison.
//!
//! Everything here is copied from the HPDC'96 text so that reports can
//! print "paper vs. measured" side by side and tests can assert that
//! the reproduction preserves the *shape* of each result (dominant
//! operations, orderings, reduction factors) without chasing absolute
//! 1996 seconds.

use sioscope_pfs::OpKind;

/// One column of Table 2 or Table 5: percentage of I/O time by
/// operation. `None` = the paper prints "–" (operation not used).
#[derive(Debug, Clone, Copy)]
pub struct IoBreakdown {
    /// Version label.
    pub version: &'static str,
    /// open %.
    pub open: Option<f64>,
    /// gopen %.
    pub gopen: Option<f64>,
    /// read %.
    pub read: Option<f64>,
    /// seek %.
    pub seek: Option<f64>,
    /// write %.
    pub write: Option<f64>,
    /// iomode %.
    pub iomode: Option<f64>,
    /// flush %.
    pub flush: Option<f64>,
    /// close %.
    pub close: Option<f64>,
}

impl IoBreakdown {
    /// Percentage for a kind (`None` if unused).
    pub fn get(&self, kind: OpKind) -> Option<f64> {
        match kind {
            OpKind::Open => self.open,
            OpKind::Gopen => self.gopen,
            OpKind::Read => self.read,
            OpKind::Seek => self.seek,
            OpKind::Write => self.write,
            OpKind::Iomode => self.iomode,
            OpKind::Flush => self.flush,
            OpKind::Close => self.close,
        }
    }

    /// The operation with the largest share.
    pub fn dominant(&self) -> OpKind {
        OpKind::all()
            .into_iter()
            .max_by(|&a, &b| {
                self.get(a)
                    .unwrap_or(0.0)
                    .partial_cmp(&self.get(b).unwrap_or(0.0))
                    .expect("no NaN in paper data")
            })
            .expect("eight kinds")
    }
}

/// Table 2 — ESCAT aggregate I/O performance summaries (% of I/O
/// time).
pub const ESCAT_TABLE2: [IoBreakdown; 3] = [
    IoBreakdown {
        version: "A",
        open: Some(53.68),
        gopen: None,
        read: Some(42.64),
        seek: Some(1.01),
        write: Some(1.27),
        iomode: None,
        flush: None,
        close: Some(1.39),
    },
    IoBreakdown {
        version: "B",
        open: Some(0.00),
        gopen: Some(4.05),
        read: Some(0.24),
        seek: Some(63.21),
        write: Some(28.75),
        iomode: Some(2.94),
        flush: None,
        close: Some(0.81),
    },
    IoBreakdown {
        version: "C",
        open: Some(0.03),
        gopen: Some(21.65),
        read: Some(1.53),
        seek: Some(1.75),
        write: Some(55.63),
        iomode: Some(16.06),
        flush: None,
        close: Some(3.34),
    },
];

/// Table 3 — ESCAT percentage of *total execution time* by I/O
/// operation. Columns: ethylene A, B, C (128 nodes) and carbon
/// monoxide C (256 nodes).
pub const ESCAT_TABLE3: [IoBreakdown; 4] = [
    IoBreakdown {
        version: "A",
        open: Some(1.60),
        gopen: None,
        read: Some(1.27),
        seek: Some(0.03),
        write: Some(0.04),
        iomode: None,
        flush: None,
        close: Some(0.04),
    },
    IoBreakdown {
        version: "B",
        open: Some(0.00),
        gopen: Some(0.19),
        read: Some(0.01),
        seek: Some(2.91),
        write: Some(1.32),
        iomode: Some(0.14),
        flush: None,
        close: Some(0.04),
    },
    IoBreakdown {
        version: "C",
        open: Some(0.00),
        gopen: Some(0.16),
        read: Some(0.01),
        seek: Some(0.01),
        write: Some(0.41),
        iomode: Some(0.12),
        flush: None,
        close: Some(0.02),
    },
    IoBreakdown {
        version: "C/carbon-monoxide",
        open: Some(0.00),
        gopen: Some(7.45),
        read: Some(9.50),
        seek: Some(0.00),
        write: Some(0.03),
        iomode: None,
        flush: None,
        close: Some(2.41),
    },
];

/// Table 3's "All I/O" row.
pub const ESCAT_TABLE3_ALL_IO: [f64; 4] = [2.97, 4.60, 0.73, 19.40];

/// Table 5 — PRISM aggregate I/O performance summaries (% of I/O
/// time).
pub const PRISM_TABLE5: [IoBreakdown; 3] = [
    IoBreakdown {
        version: "A",
        open: Some(75.43),
        gopen: None,
        read: Some(16.24),
        seek: Some(3.87),
        write: Some(1.83),
        iomode: None,
        flush: None,
        close: Some(2.63),
    },
    IoBreakdown {
        version: "B",
        open: Some(57.36),
        gopen: None,
        read: Some(9.47),
        seek: Some(1.22),
        write: Some(9.91),
        iomode: Some(17.75),
        flush: None,
        close: Some(4.50),
    },
    IoBreakdown {
        version: "C",
        open: Some(3.36),
        gopen: Some(3.42),
        read: Some(83.92),
        seek: Some(0.40),
        write: Some(6.51),
        iomode: None,
        flush: Some(0.06),
        close: Some(2.32),
    },
];

/// Figure 1: total execution time fell ~20% from ESCAT version A to
/// version C.
pub const ESCAT_EXEC_REDUCTION: f64 = 0.20;
/// Figure 1's approximate y-axis range (seconds) for ESCAT.
pub const ESCAT_EXEC_RANGE: (f64, f64) = (5400.0, 6800.0);

/// Figure 6: total execution time fell ~23% across the PRISM
/// versions.
pub const PRISM_EXEC_REDUCTION: f64 = 0.23;
/// Figure 6's approximate y-axis range (seconds) for PRISM.
pub const PRISM_EXEC_RANGE: (f64, f64) = (7000.0, 9500.0);

/// §4.2: in ESCAT version A, 97% of reads are ≤ 2 KB but carry only
/// ~40% of read data; in B/C only ~50% of reads are small and 128 KB
/// reads carry 98% of the data.
pub const ESCAT_SMALL_READ_FRACTION_A: f64 = 0.97;
/// §4.2 (versions B/C).
pub const ESCAT_SMALL_READ_FRACTION_BC: f64 = 0.50;
/// §4.2: size boundary for a "small" request.
pub const SMALL_REQUEST_BYTES: u64 = 2048;
/// §4.2: the large-read size that carries 98% of version-B/C data.
pub const ESCAT_LARGE_READ_BYTES: u64 = 128 * 1024;

/// §5.2: PRISM's restart body record size.
pub const PRISM_BODY_RECORD: u64 = 155_584;

/// §5.3: read time dropped by 125 s from PRISM version A to B.
pub const PRISM_READ_TIME_DROP_AB_SECS: f64 = 125.0;

/// Figure 9: the five checkpoints are clearly visible in PRISM C's
/// write timeline.
pub const PRISM_CHECKPOINTS: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dominants_match_the_narrative() {
        assert_eq!(ESCAT_TABLE2[0].dominant(), OpKind::Open);
        assert_eq!(ESCAT_TABLE2[1].dominant(), OpKind::Seek);
        assert_eq!(ESCAT_TABLE2[2].dominant(), OpKind::Write);
    }

    #[test]
    fn table5_dominants_match_the_narrative() {
        assert_eq!(PRISM_TABLE5[0].dominant(), OpKind::Open);
        assert_eq!(PRISM_TABLE5[1].dominant(), OpKind::Open);
        assert_eq!(PRISM_TABLE5[2].dominant(), OpKind::Read);
    }

    #[test]
    fn table_columns_sum_to_about_100() {
        for col in ESCAT_TABLE2.iter().chain(PRISM_TABLE5.iter()) {
            let sum: f64 = OpKind::all().iter().filter_map(|&k| col.get(k)).sum();
            assert!(
                (sum - 100.0).abs() < 0.5,
                "column {} sums to {sum}",
                col.version
            );
        }
    }

    #[test]
    fn table3_all_io_is_consistent_with_rows() {
        for (i, col) in ESCAT_TABLE3.iter().enumerate() {
            let sum: f64 = OpKind::all().iter().filter_map(|&k| col.get(k)).sum();
            assert!(
                (sum - ESCAT_TABLE3_ALL_IO[i]).abs() < 0.1,
                "column {} rows sum {sum} vs All-I/O {}",
                col.version,
                ESCAT_TABLE3_ALL_IO[i]
            );
        }
    }

    #[test]
    fn getters_cover_all_kinds() {
        let col = PRISM_TABLE5[2];
        assert_eq!(col.get(OpKind::Flush), Some(0.06));
        assert_eq!(col.get(OpKind::Iomode), None);
        assert_eq!(col.get(OpKind::Gopen), Some(3.42));
    }
}
