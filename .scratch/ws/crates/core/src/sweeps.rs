//! Machine-configuration sweeps — the paper's stated future work.
//!
//! §7: *"we plan to examine the effects of different machine
//! configurations (e.g., number of I/O nodes) and different
//! architectures on I/O performance."* These sweeps re-run a paper
//! workload while varying one machine parameter at a time, reporting
//! execution time and total client-observed I/O time per point.

use crate::coupled::{run_coupled, Route};
use crate::experiments::contention::{
    contended_machine, mix_stream, run_stream, CLASS_TAU, COMPUTE_BOUND, IO_BOUND,
};
use crate::experiments::Scale;
use crate::recovery::{run_with_recovery, run_with_recovery_backend};
use crate::simulator::{run, RunResult, SimOptions};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sioscope_faults::{FaultGen, FaultSchedule};
use sioscope_pfs::{BackendConfig, BurstBufferConfig, PfsConfig};
use sioscope_sched::QueuePolicy;
use sioscope_sim::Time;
use sioscope_stream::StagingConfig;
use sioscope_workloads::{
    CheckpointPolicy, EscatConfig, EscatVersion, PrismConfig, PrismVersion, Recoverable,
    StreamCadence, Workload,
};
use std::fmt::Write as _;

/// Every machine-configuration sweep, as a stable identifier.
///
/// The ids double as CLI arguments (`repro --sweeps=io_nodes,...`) and
/// as the `parameter` column of the rendered table, so a sweep can be
/// selected by the same name it reports under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SweepId {
    IoNodes,
    StripeUnit,
    DiskBandwidth,
    DegradedArrays,
    FaultIntensity,
    Mtbf,
    CheckpointInterval,
    CheckpointIntervalBurst,
    CheckpointIntervalBurstCrash,
    LoadFactor,
    StagingDepth,
}

impl SweepId {
    /// All sweeps in presentation order.
    pub fn all() -> Vec<SweepId> {
        use SweepId::*;
        vec![
            IoNodes,
            StripeUnit,
            DiskBandwidth,
            DegradedArrays,
            FaultIntensity,
            Mtbf,
            CheckpointInterval,
            CheckpointIntervalBurst,
            CheckpointIntervalBurstCrash,
            LoadFactor,
            StagingDepth,
        ]
    }

    /// Stable identifier (CLI arguments, artifact file names).
    pub fn id(self) -> &'static str {
        use SweepId::*;
        match self {
            IoNodes => "io_nodes",
            StripeUnit => "stripe_unit",
            DiskBandwidth => "disk_bandwidth",
            DegradedArrays => "degraded_arrays",
            FaultIntensity => "fault_intensity",
            Mtbf => "mtbf",
            CheckpointInterval => "checkpoint_interval",
            CheckpointIntervalBurst => "checkpoint_interval_burst",
            CheckpointIntervalBurstCrash => "checkpoint_interval_burst_crash",
            LoadFactor => "load_factor",
            StagingDepth => "staging_depth",
        }
    }

    /// Parse an identifier.
    pub fn from_id(id: &str) -> Option<SweepId> {
        SweepId::all().into_iter().find(|s| s.id() == id)
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Varied-parameter label (e.g. `"io_nodes=8"`).
    pub label: String,
    /// Parameter value (numeric, for plotting).
    pub value: u64,
    /// Wall-clock execution time of the run.
    pub exec_time: Time,
    /// Total client-observed I/O time.
    pub io_time: Time,
    /// Events processed (simulation cost indicator).
    pub events: u64,
}

/// A completed sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// What was varied.
    pub parameter: &'static str,
    /// Workload name.
    pub workload: String,
    /// The points, in parameter order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Speedup of total I/O time from the first to the best point.
    pub fn best_io_speedup(&self) -> f64 {
        let first = self.points.first().map(|p| p.io_time.as_secs_f64());
        let best = self
            .points
            .iter()
            .map(|p| p.io_time.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        match first {
            Some(f) if best > 0.0 => f / best,
            _ => 1.0,
        }
    }

    /// Is I/O time non-increasing along the sweep (more resources
    /// never hurt)?
    pub fn io_time_monotone_nonincreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].io_time <= w[0].io_time.scale(1.02))
    }

    /// Is execution time non-decreasing along the sweep (more faults
    /// never help)? Allows 2% slack for re-routing that incidentally
    /// rebalances load.
    pub fn exec_time_monotone_nondecreasing(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].exec_time >= w[0].exec_time.scale(0.98))
    }

    /// Render as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Sweep of {} over {} ({} points)",
            self.parameter,
            self.workload,
            self.points.len()
        );
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>14}{:>12}",
            self.parameter, "exec time", "total I/O", "events"
        );
        let _ = writeln!(out, "{}", "-".repeat(58));
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<18}{:>13.1}s{:>13.1}s{:>12}",
                p.label,
                p.exec_time.as_secs_f64(),
                p.io_time.as_secs_f64(),
                p.events
            );
        }
        out
    }
}

fn run_point(workload: &Workload, cfg: PfsConfig, label: String, value: u64) -> SweepPoint {
    let r: RunResult = run(workload, cfg, SimOptions::default())
        .unwrap_or_else(|e| panic!("sweep point {label}: {e}"));
    SweepPoint {
        label,
        value,
        exec_time: r.exec_time,
        io_time: r.total_io_time(),
        events: r.events,
    }
}

/// Vary the number of I/O nodes (the paper's headline example of a
/// configuration study). Each point re-runs `workload` with the same
/// compute partition but `n` I/O nodes/disk arrays.
pub fn io_node_sweep(workload: &Workload, io_nodes: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = io_nodes
        .par_iter()
        .map(|&n| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.machine.io_nodes = n;
            run_point(workload, cfg, format!("io_nodes={n}"), u64::from(n))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "io_nodes",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the PFS stripe unit. Request sizes that were tuned to the
/// 64 KB default (ESCAT's 128 KB M_RECORD reads) stop being
/// stripe-multiples at other units — quantifying how tightly the
/// paper's applications were coupled to one file-system constant
/// (§6.2: "optimizations are closely tied to the idiosyncrasies of
/// the parallel I/O system").
pub fn stripe_sweep(workload: &Workload, units: &[u64]) -> Sweep {
    let mut points: Vec<SweepPoint> = units
        .par_iter()
        .map(|&u| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.stripe_unit = u;
            run_point(workload, cfg, format!("stripe={}K", u >> 10), u)
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "stripe_unit",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the disk array bandwidth (architecture generations).
pub fn disk_bandwidth_sweep(workload: &Workload, bandwidths_mbps: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = bandwidths_mbps
        .par_iter()
        .map(|&mbps| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            cfg.machine.disk.bandwidth_bps = f64::from(mbps) * 1e6;
            run_point(workload, cfg, format!("{mbps}MB/s"), u64::from(mbps))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "disk_bandwidth",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the number of degraded (single-spindle-failure) RAID-3
/// arrays — failure injection at the device level. Each point is a
/// fault schedule of permanent spindle failures at time zero, so this
/// sweep is now a client of the `sioscope-faults` subsystem rather
/// than a special-cased machine flag.
pub fn degraded_array_sweep(workload: &Workload, degraded_counts: &[u32]) -> Sweep {
    let mut points: Vec<SweepPoint> = degraded_counts
        .par_iter()
        .map(|&k| {
            let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
            let ions: Vec<u32> = (0..k.min(cfg.machine.io_nodes)).collect();
            cfg.faults = FaultSchedule::degraded_from_start(&ions);
            run_point(workload, cfg, format!("degraded={k}"), u64::from(k))
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "degraded_arrays",
        workload: workload.name.clone(),
        points,
    }
}

/// Vary the fault intensity: point `k` runs under the first `k`
/// events of the seeded fault stream. Because the stream is drawn
/// sequentially, intensity `k`'s scenario is a strict prefix of
/// `k + 1`'s — each point adds faults to the previous scenario
/// instead of rolling an unrelated one, so execution-time inflation
/// accumulates along the axis. Fault instants and window lengths are
/// placed as fractions of the healthy run's execution time.
pub fn fault_intensity_sweep(workload: &Workload, intensities: &[usize], seed: u64) -> Sweep {
    let base_cfg = PfsConfig::caltech(workload.nodes, workload.os);
    let horizon = run(workload, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("fault sweep baseline: {e}"))
        .exec_time;
    let io_nodes = base_cfg.machine.io_nodes;
    let mut points: Vec<SweepPoint> = intensities
        .par_iter()
        .map(|&k| {
            let mut cfg = base_cfg.clone();
            cfg.faults = FaultGen::new(seed, horizon, io_nodes)
                .with_events(k)
                .schedule();
            run_point(workload, cfg, format!("faults={k}"), k as u64)
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "fault_intensity",
        workload: workload.name.clone(),
        points,
    }
}

/// The crash environment shared by the recovery sweeps, derived from
/// the fault-free baseline `b` so scenarios scale with the workload:
/// crashes are generated over a `3.2 × b` horizon (room for several
/// full replays) and each charges `5%` of the baseline (min 1 s) in
/// reboot/reschedule latency.
fn crash_environment(b: Time) -> (Time, Time) {
    let horizon = b.scale(3.2);
    let rework = b.scale(0.05).max(Time::from_secs(1));
    (horizon, rework)
}

/// Vary the compute-partition MTBF, as a percentage of the fault-free
/// execution time. For one seed the exponential inter-crash gaps scale
/// linearly with the MTBF, so shrinking it packs strictly more crashes
/// into the same horizon — time-to-solution inflation along the axis
/// comes from crash density, not from re-rolled scenarios.
pub fn mtbf_sweep(rec: &Recoverable, mtbf_percents: &[u32], seed: u64) -> Sweep {
    let w = rec.workload();
    let base_cfg = PfsConfig::caltech(w.nodes, w.os);
    let baseline = run(w, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("mtbf sweep baseline: {e}"))
        .exec_time;
    let (horizon, rework) = crash_environment(baseline);
    let fgen = FaultGen::new(seed, horizon, base_cfg.machine.io_nodes);
    let mut points: Vec<SweepPoint> = mtbf_percents
        .par_iter()
        .map(|&pct| {
            let mtbf = baseline.scale(f64::from(pct) / 100.0);
            let crashes = fgen.compute_crash_schedule(mtbf, rework, w.nodes);
            let n = crashes.events.len();
            let r = run_with_recovery(rec, &crashes, base_cfg.clone(), SimOptions::default())
                .unwrap_or_else(|e| panic!("mtbf={pct}%: {e}"));
            SweepPoint {
                label: format!("mtbf={pct}% ({n} crashes)"),
                value: u64::from(pct),
                exec_time: r.recovery.time_to_solution,
                io_time: r.total_io_time(),
                events: r.events,
            }
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "mtbf",
        workload: w.name.clone(),
        points,
    }
}

/// Vary PRISM's checkpoint interval under one fixed crash schedule —
/// the classic U-curve: dense checkpoints waste time committing,
/// sparse checkpoints waste time replaying lost work, and Young's
/// optimum sits between. Every point faces the *same* crashes
/// (exponential with MTBF `0.8 ×` the policy-free baseline, generated
/// once), so the axis varies only the commit cadence.
pub fn checkpoint_interval_sweep(cfg: &PrismConfig, intervals: &[u32], seed: u64) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let baseline = run(&baseline_w, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("checkpoint sweep baseline: {e}"))
        .exec_time;
    let (horizon, rework) = crash_environment(baseline);
    let crashes = FaultGen::new(seed, horizon, base_cfg.machine.io_nodes).compute_crash_schedule(
        baseline.scale(0.8),
        rework,
        baseline_w.nodes,
    );
    checkpoint_interval_sweep_with(cfg, intervals, &crashes)
}

/// [`checkpoint_interval_sweep`] against a caller-supplied crash
/// schedule. Exposed so experiments and tests can place crashes at
/// *measured* instants (e.g. just before a policy's commit) where the
/// U-curve's right arm is provable rather than seed-dependent.
pub fn checkpoint_interval_sweep_with(
    cfg: &PrismConfig,
    intervals: &[u32],
    crashes: &FaultSchedule,
) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let mut points: Vec<SweepPoint> = intervals
        .par_iter()
        .map(|&interval| {
            let snapped = cfg.snap_interval(interval);
            let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: snapped });
            let r = run_with_recovery(&rec, crashes, base_cfg.clone(), SimOptions::default())
                .unwrap_or_else(|e| panic!("interval={snapped}: {e}"));
            SweepPoint {
                label: format!("every {snapped} steps"),
                value: u64::from(snapped),
                exec_time: r.recovery.time_to_solution,
                io_time: r.total_io_time(),
                events: r.events,
            }
        })
        .collect();
    points.sort_by_key(|p| p.value);
    points.dedup_by_key(|p| p.value);
    Sweep {
        parameter: "checkpoint_interval",
        workload: baseline_w.name.clone(),
        points,
    }
}

/// [`checkpoint_interval_sweep`] with a burst buffer absorbing the
/// checkpoint files. The crash environment is derived from the *same*
/// plain-PFS baseline with the same seed, so the two sweeps face
/// identical crash schedules and their curves are directly
/// comparable: with commits landing in the host-side log at
/// near-zero foreground cost, the U-curve's left arm (dense
/// checkpoints waste time committing) collapses and the curve
/// flattens toward its replay-bounded floor.
pub fn checkpoint_interval_sweep_burst(cfg: &PrismConfig, intervals: &[u32], seed: u64) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let baseline = run(&baseline_w, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("burst checkpoint sweep baseline: {e}"))
        .exec_time;
    let (horizon, rework) = crash_environment(baseline);
    let crashes = FaultGen::new(seed, horizon, base_cfg.machine.io_nodes).compute_crash_schedule(
        baseline.scale(0.8),
        rework,
        baseline_w.nodes,
    );
    checkpoint_interval_sweep_burst_with(cfg, intervals, &crashes)
}

/// [`checkpoint_interval_sweep_burst`] against a caller-supplied
/// crash schedule.
pub fn checkpoint_interval_sweep_burst_with(
    cfg: &PrismConfig,
    intervals: &[u32],
    crashes: &FaultSchedule,
) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let mut points: Vec<SweepPoint> = intervals
        .par_iter()
        .map(|&interval| {
            let snapped = cfg.snap_interval(interval);
            let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: snapped });
            let tier = BackendConfig::Burst(BurstBufferConfig::absorbing(
                base_cfg.clone(),
                rec.checkpoint_files().to_vec(),
            ));
            let r = run_with_recovery_backend(&rec, crashes, &tier, SimOptions::default())
                .unwrap_or_else(|e| panic!("burst interval={snapped}: {e}"));
            SweepPoint {
                label: format!("every {snapped} steps"),
                value: u64::from(snapped),
                exec_time: r.recovery.time_to_solution,
                io_time: r.total_io_time(),
                events: r.events,
            }
        })
        .collect();
    points.sort_by_key(|p| p.value);
    points.dedup_by_key(|p| p.value);
    Sweep {
        parameter: "checkpoint_interval_burst",
        workload: baseline_w.name.clone(),
        points,
    }
}

/// [`checkpoint_interval_sweep_burst`] with *burst-tier* faults
/// injected on top of the same compute-crash schedule: drain stalls
/// and a burst-node crash that destroys resident (not yet drained)
/// checkpoint bytes. A commit whose bytes died in the log is not
/// durable — the recovery driver must roll back past it — so the
/// flattened burst U-curve un-flattens: dense checkpointing regains
/// value because each commit bounds how much the log can lose.
pub fn checkpoint_interval_sweep_burst_crash(
    cfg: &PrismConfig,
    intervals: &[u32],
    seed: u64,
) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let baseline = run(&baseline_w, base_cfg.clone(), SimOptions::default())
        .unwrap_or_else(|e| panic!("burst-crash checkpoint sweep baseline: {e}"))
        .exec_time;
    let (horizon, rework) = crash_environment(baseline);
    let fgen = FaultGen::new(seed, horizon, base_cfg.machine.io_nodes);
    let crashes = fgen.compute_crash_schedule(baseline.scale(0.8), rework, baseline_w.nodes);
    // The same seeded burst-fault scenario at every point, placed over
    // one attempt's horizon so the faults land mid-attempt.
    let burst_faults = FaultGen::new(seed, baseline, base_cfg.machine.io_nodes)
        .with_events(3)
        .burst_schedule();
    checkpoint_interval_sweep_burst_crash_with(cfg, intervals, &crashes, &burst_faults)
}

/// [`checkpoint_interval_sweep_burst_crash`] against caller-supplied
/// compute-crash and burst-fault schedules. Exposed so tests can place
/// a burst-node crash exactly where checkpoint bytes are resident.
pub fn checkpoint_interval_sweep_burst_crash_with(
    cfg: &PrismConfig,
    intervals: &[u32],
    crashes: &FaultSchedule,
    burst_faults: &FaultSchedule,
) -> Sweep {
    let baseline_w = cfg.build();
    let base_cfg = PfsConfig::caltech(baseline_w.nodes, baseline_w.os);
    let mut points: Vec<SweepPoint> = intervals
        .par_iter()
        .map(|&interval| {
            let snapped = cfg.snap_interval(interval);
            let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: snapped });
            let mut burst =
                BurstBufferConfig::absorbing(base_cfg.clone(), rec.checkpoint_files().to_vec());
            burst.faults = burst_faults.clone();
            let tier = BackendConfig::Burst(burst);
            let r = run_with_recovery_backend(&rec, crashes, &tier, SimOptions::default())
                .unwrap_or_else(|e| panic!("burst-crash interval={snapped}: {e}"));
            SweepPoint {
                label: format!("every {snapped} steps"),
                value: u64::from(snapped),
                exec_time: r.recovery.time_to_solution,
                io_time: r.total_io_time(),
                events: r.events,
            }
        })
        .collect();
    points.sort_by_key(|p| p.value);
    points.dedup_by_key(|p| p.value);
    Sweep {
        parameter: "checkpoint_interval_burst_crash",
        workload: baseline_w.name.clone(),
        points,
    }
}

/// One offered-load measurement behind [`load_factor_sweep`]: the
/// per-class mean bounded slowdowns that the generic [`SweepPoint`]
/// has no columns for.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadFactorPoint {
    /// Offered load as a percentage of the reference arrival rate.
    pub load_pct: u32,
    /// Mean bounded slowdown of the I/O-bound class.
    pub io_bsld: f64,
    /// Mean bounded slowdown of the compute-bound class.
    pub cpu_bsld: f64,
    /// Schedule makespan.
    pub makespan: Time,
    /// Total client-observed I/O time summed over every job.
    pub io_time: Time,
    /// Events processed across the whole schedule.
    pub events: u64,
}

/// Run the contention mix at each offered load. Load `100` maps to the
/// reference mean inter-arrival of 200 ms; load `L` scales it by
/// `100/L`, so higher loads compress the same seeded job sequence into
/// a shorter window (Poisson gaps scale linearly with the mean for a
/// fixed seed). The point of the axis: I/O-bound jobs queue at the
/// shared I/O nodes, so their slowdown grows superlinearly with load,
/// while compute-bound jobs degrade gently.
pub fn load_factor_points(loads: &[u32], scale: Scale) -> Vec<LoadFactorPoint> {
    let reference = Time::from_millis(200);
    let mut points: Vec<LoadFactorPoint> = loads
        .par_iter()
        .map(|&pct| {
            assert!(pct > 0, "offered load must be positive");
            let stream = mix_stream(scale, reference.scale(100.0 / f64::from(pct)));
            let out = run_stream(
                &stream,
                QueuePolicy::Fcfs,
                contended_machine(scale),
                &format!("load_factor={pct}%"),
            );
            let io_time = out
                .per_job
                .iter()
                .fold(Time::ZERO, |acc, r| acc.saturating_add(r.total_io_time()));
            LoadFactorPoint {
                load_pct: pct,
                io_bsld: out
                    .stats
                    .mean_bounded_slowdown_of(IO_BOUND, CLASS_TAU)
                    .unwrap_or(1.0),
                cpu_bsld: out
                    .stats
                    .mean_bounded_slowdown_of(COMPUTE_BOUND, CLASS_TAU)
                    .unwrap_or(1.0),
                makespan: out.stats.makespan,
                io_time,
                events: out.stats.total_events,
            }
        })
        .collect();
    points.sort_by_key(|p| p.load_pct);
    points
}

/// [`load_factor_points`] folded into the generic [`Sweep`] table so
/// the repro CLI reports it beside the machine-configuration axes; the
/// per-class slowdowns ride in the label column.
pub fn load_factor_sweep(loads: &[u32], scale: Scale) -> Sweep {
    let points = load_factor_points(loads, scale)
        .into_iter()
        .map(|p| SweepPoint {
            label: format!(
                "load={}% io {:.2} cpu {:.2}",
                p.load_pct, p.io_bsld, p.cpu_bsld
            ),
            value: u64::from(p.load_pct),
            exec_time: p.makespan,
            io_time: p.io_time,
            events: p.events,
        })
        .collect();
    Sweep {
        parameter: "load_factor",
        workload: "contention mix (io-bound + compute-bound)".into(),
        points,
    }
}

/// Sweep the staging-queue depth against the consumer's analysis
/// speed for a coupled streaming pipeline: the stall-time surface of
/// the tentpole question "how much staging memory buys a stall-free
/// producer at a given consumer speed?". `depths_kib` of `0` means
/// unbounded; the point label carries both axes, `value` encodes them
/// as `depth_kib * 1000 + speed_pct`, `exec_time` is the end-to-end
/// pipeline latency, and `io_time` reports the producer's stall.
pub fn staging_depth_sweep(cadence: &StreamCadence, depths_kib: &[u32], speeds: &[u32]) -> Sweep {
    let grid: Vec<(u32, u32)> = depths_kib
        .iter()
        .flat_map(|&d| speeds.iter().map(move |&s| (d, s)))
        .collect();
    let mut points: Vec<SweepPoint> = grid
        .par_iter()
        .map(|&(depth_kib, pct)| {
            let depth = u64::from(depth_kib) * 1024;
            let route = Route::Stream(StagingConfig::paragon(depth));
            let o = run_coupled(cadence, &route, pct, &FaultSchedule::empty())
                .unwrap_or_else(|e| panic!("staging_depth depth={depth_kib}K speed={pct}%: {e}"));
            let depth_label = if depth_kib == 0 {
                "unbounded".to_string()
            } else {
                format!("{depth_kib}K")
            };
            SweepPoint {
                label: format!("depth={depth_label} speed={pct}%"),
                value: u64::from(depth_kib) * 1000 + u64::from(pct),
                exec_time: o.pipeline_latency,
                io_time: o.producer_stall,
                events: o.chunks,
            }
        })
        .collect();
    points.sort_by_key(|p| p.value);
    Sweep {
        parameter: "staging_depth",
        workload: cadence.name.clone(),
        points,
    }
}

/// Run one registered sweep at the given scale with its canonical
/// parameter grid — the single entry point the `repro` binary and the
/// campaign engine share, so "the `io_nodes` sweep" means the same
/// runs everywhere.
pub fn run_sweep(id: SweepId, scale: Scale) -> Sweep {
    let escat_b = match scale {
        Scale::Smoke => EscatConfig::tiny(EscatVersion::B).build(),
        Scale::Full => EscatConfig::ethylene(EscatVersion::B).build(),
    };
    let prism_a = match scale {
        Scale::Smoke => PrismConfig::tiny(PrismVersion::A).build(),
        Scale::Full => PrismConfig::test_problem(PrismVersion::A).build(),
    };
    match id {
        SweepId::IoNodes => io_node_sweep(&escat_b, &[2, 4, 8, 16, 32]),
        SweepId::StripeUnit => stripe_sweep(&escat_b, &[16 << 10, 64 << 10, 256 << 10]),
        SweepId::DiskBandwidth => disk_bandwidth_sweep(&prism_a, &[2, 8, 32]),
        SweepId::DegradedArrays => degraded_array_sweep(&prism_a, &[0, 4, 8]),
        SweepId::FaultIntensity => fault_intensity_sweep(&prism_a, &[0, 2, 4, 8], 0xF417),
        SweepId::Mtbf => {
            let cfg = match scale {
                Scale::Smoke => EscatConfig::tiny(EscatVersion::C),
                Scale::Full => EscatConfig::ethylene(EscatVersion::C),
            };
            let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
            mtbf_sweep(&rec, &[25, 50, 100, 200, 400], 0x4EC0)
        }
        SweepId::CheckpointInterval => {
            let cfg = match scale {
                Scale::Smoke => PrismConfig::tiny(PrismVersion::B),
                Scale::Full => PrismConfig::test_problem(PrismVersion::B),
            };
            checkpoint_interval_sweep(&cfg, &[1, 2, 5, 10, 25, 125, 250, 625], 0x0C7)
        }
        SweepId::CheckpointIntervalBurst => {
            let cfg = match scale {
                Scale::Smoke => PrismConfig::tiny(PrismVersion::B),
                Scale::Full => PrismConfig::test_problem(PrismVersion::B),
            };
            checkpoint_interval_sweep_burst(&cfg, &[1, 2, 5, 10, 25, 125, 250, 625], 0x0C7)
        }
        SweepId::CheckpointIntervalBurstCrash => {
            let cfg = match scale {
                Scale::Smoke => PrismConfig::tiny(PrismVersion::B),
                Scale::Full => PrismConfig::test_problem(PrismVersion::B),
            };
            checkpoint_interval_sweep_burst_crash(&cfg, &[1, 2, 5, 10, 25, 125, 250, 625], 0x0C7)
        }
        SweepId::LoadFactor => load_factor_sweep(&[25, 50, 100, 200, 400], scale),
        SweepId::StagingDepth => {
            let cadence = match scale {
                Scale::Smoke => PrismConfig::tiny(PrismVersion::C).stream_cadence(),
                Scale::Full => PrismConfig::test_problem(PrismVersion::C).stream_cadence(),
            };
            staging_depth_sweep(&cadence, &[16, 64, 512, 0], &[50, 100, 200])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_ids_round_trip() {
        for s in SweepId::all() {
            assert_eq!(SweepId::from_id(s.id()), Some(s));
        }
        assert_eq!(SweepId::from_id("nope"), None);
        let ids: Vec<&str> = SweepId::all().iter().map(|s| s.id()).collect();
        assert_eq!(
            ids,
            vec![
                "io_nodes",
                "stripe_unit",
                "disk_bandwidth",
                "degraded_arrays",
                "fault_intensity",
                "mtbf",
                "checkpoint_interval",
                "checkpoint_interval_burst",
                "checkpoint_interval_burst_crash",
                "load_factor",
                "staging_depth"
            ]
        );
    }

    #[test]
    fn staging_depth_sweep_surfaces_the_stall_tradeoff() {
        let cadence = PrismConfig::tiny(PrismVersion::C).stream_cadence();
        let sweep = staging_depth_sweep(&cadence, &[16, 512, 0], &[50, 100]);
        assert_eq!(sweep.points.len(), 6);
        assert_eq!(sweep.parameter, "staging_depth");
        // Tight depth at a slow consumer stalls; unbounded never does.
        let point = |label: &str| {
            sweep
                .points
                .iter()
                .find(|p| p.label == label)
                .unwrap_or_else(|| panic!("missing {label}: {}", sweep.render()))
        };
        assert!(point("depth=16K speed=50%").io_time > Time::ZERO);
        assert_eq!(point("depth=unbounded speed=50%").io_time, Time::ZERO);
        assert_eq!(point("depth=unbounded speed=100%").io_time, Time::ZERO);
        // A faster consumer never stalls the producer more at the
        // same depth.
        assert!(
            point("depth=16K speed=100%").io_time <= point("depth=16K speed=50%").io_time,
            "{}",
            sweep.render()
        );
        // Replay identity for the whole grid.
        let again = staging_depth_sweep(&cadence, &[16, 512, 0], &[50, 100]);
        for (a, b) in sweep.points.iter().zip(&again.points) {
            assert_eq!(a.exec_time, b.exec_time);
            assert_eq!(a.io_time, b.io_time);
        }
    }

    #[test]
    fn io_node_sweep_runs_and_orders_points() {
        let w = EscatConfig::tiny(EscatVersion::C).build();
        let sweep = io_node_sweep(&w, &[2, 8, 4]);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].value, 2);
        assert_eq!(sweep.points[2].value, 8);
        let text = sweep.render();
        assert!(text.contains("io_nodes=4"));
    }

    #[test]
    fn more_io_nodes_never_hurt_a_staging_workload() {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let sweep = io_node_sweep(&w, &[1, 2, 4, 8, 16]);
        assert!(sweep.io_time_monotone_nonincreasing(), "{}", sweep.render());
        assert!(sweep.best_io_speedup() >= 1.0);
    }

    #[test]
    fn stripe_sweep_runs() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = stripe_sweep(&w, &[16 << 10, 64 << 10, 256 << 10]);
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.io_time > Time::ZERO));
    }

    #[test]
    fn degraded_arrays_increase_io_time() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = degraded_array_sweep(&w, &[0, 1, 2]);
        let healthy = sweep.points.first().expect("points").io_time;
        let worst = sweep.points.last().expect("points").io_time;
        assert!(worst > healthy, "{}", sweep.render());
        // Bounded: degradation is a constant factor, not a collapse.
        assert!(worst < healthy.scale(3.0), "{}", sweep.render());
    }

    #[test]
    fn fault_intensity_zero_matches_healthy_and_inflation_accumulates() {
        let w = PrismConfig::tiny(PrismVersion::B).build();
        let sweep = fault_intensity_sweep(&w, &[0, 3, 8], 0xF417);
        assert_eq!(sweep.points.len(), 3);
        let healthy = run(&w, PfsConfig::caltech(w.nodes, w.os), SimOptions::default()).unwrap();
        assert_eq!(
            sweep.points[0].exec_time, healthy.exec_time,
            "intensity 0 is the fault-free run"
        );
        let first = sweep.points.first().expect("points").exec_time;
        let last = sweep.points.last().expect("points").exec_time;
        assert!(last > first, "{}", sweep.render());
        assert!(
            sweep.exec_time_monotone_nondecreasing(),
            "{}",
            sweep.render()
        );
    }

    #[test]
    fn mtbf_sweep_densities_nest_and_never_beat_the_baseline() {
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let percents = [25, 75, 400];
        let sweep = mtbf_sweep(&rec, &percents, 0x4EC0);
        assert_eq!(sweep.parameter, "mtbf");
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.windows(2).all(|w| w[0].value < w[1].value));

        // The crash schedules behind the points: for one seed, gaps
        // scale linearly with the MTBF, so a shorter MTBF can only add
        // crashes inside the fixed horizon.
        let w = rec.workload();
        let base_cfg = PfsConfig::caltech(w.nodes, w.os);
        let baseline = run(w, base_cfg.clone(), SimOptions::default())
            .unwrap()
            .exec_time;
        let horizon = baseline.scale(3.2);
        let rework = baseline.scale(0.05).max(Time::from_secs(1));
        let fgen = FaultGen::new(0x4EC0, horizon, base_cfg.machine.io_nodes);
        let counts: Vec<usize> = percents
            .iter()
            .map(|&pct| {
                fgen.compute_crash_schedule(baseline.scale(f64::from(pct) / 100.0), rework, w.nodes)
                    .events
                    .len()
            })
            .collect();
        assert!(
            counts.windows(2).all(|c| c[0] >= c[1]),
            "crash counts must not grow with MTBF: {counts:?}"
        );

        for (p, &n) in sweep.points.iter().zip(&counts) {
            assert!(
                p.exec_time >= baseline,
                "crashes never speed a run up: {}",
                sweep.render()
            );
            if n == 0 {
                assert_eq!(p.exec_time, baseline, "no crashes means no inflation");
            }
        }

        // Same seed, same sweep — the whole chain is deterministic.
        let again = mtbf_sweep(&rec, &percents, 0x4EC0);
        for (a, b) in sweep.points.iter().zip(&again.points) {
            assert_eq!(a.exec_time, b.exec_time);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn sparse_checkpoints_pay_more_rework_under_the_same_crash() {
        use sioscope_faults::FaultKind;

        let cfg = PrismConfig::tiny(PrismVersion::B);
        let w = cfg.build();
        let pfs = PfsConfig::caltech(w.nodes, w.os);

        // Measure commit instants so the crash can be *placed*: just
        // before the sparse policy's only commit, and after the dense
        // policy's first. The sparse point then replays from scratch
        // while the dense point replays ten steps — the U-curve's
        // right arm by construction, not by seed luck.
        let sparse = cfg.recoverable(CheckpointPolicy::Fixed { interval: 20 });
        let dense = cfg.recoverable(CheckpointPolicy::Fixed { interval: 10 });
        let sparse_commit = run(sparse.workload(), pfs.clone(), SimOptions::default())
            .unwrap()
            .checkpoint_commits[0]
            .1;
        let dense_commits = run(dense.workload(), pfs.clone(), SimOptions::default())
            .unwrap()
            .checkpoint_commits;
        let dense_first = dense_commits[0].1;
        let crash_at = sparse_commit.saturating_sub(Time::from_millis(1));
        assert!(
            dense_first < crash_at,
            "ten steps of work must commit before the crash"
        );

        let mut crashes = FaultSchedule::empty();
        crashes.push(
            crash_at,
            FaultKind::ComputeNodeCrash {
                node: 0,
                rework: Time::from_secs(1),
            },
        );
        let sweep = checkpoint_interval_sweep_with(&cfg, &[10, 20], &crashes);
        assert_eq!(sweep.parameter, "checkpoint_interval");
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.points[0].value, 10);
        assert_eq!(sweep.points[1].value, 20);
        let dense_tts = sweep.points[0].exec_time;
        let sparse_tts = sweep.points[1].exec_time;
        assert!(
            sparse_tts > dense_tts,
            "losing twenty steps must cost more than losing ten:\n{}",
            sweep.render()
        );
        // Both points at least rode out the crash and the restart.
        let floor = crash_at.saturating_add(Time::from_secs(1));
        assert!(dense_tts >= floor, "{}", sweep.render());
    }

    #[test]
    fn burst_buffer_flattens_the_checkpoint_u_curve() {
        let cfg = PrismConfig::tiny(PrismVersion::B);
        let intervals = [1, 2, 5, 10, 25];
        let plain = checkpoint_interval_sweep(&cfg, &intervals, 0x0C7);
        let burst = checkpoint_interval_sweep_burst(&cfg, &intervals, 0x0C7);
        assert_eq!(burst.parameter, "checkpoint_interval_burst");
        assert_eq!(plain.points.len(), burst.points.len());
        let min_tts = |s: &Sweep| {
            s.points
                .iter()
                .map(|p| p.exec_time)
                .fold(Time::MAX, Time::min)
        };
        // The acceptance bar: with commits absorbed at log speed, the
        // best burst interval beats the plain U-curve's minimum.
        assert!(
            min_tts(&burst) < min_tts(&plain),
            "burst optimum must undercut the plain optimum:\nplain:\n{}\nburst:\n{}",
            plain.render(),
            burst.render()
        );
        // And point-by-point under the same crashes, absorbing the
        // commit cost never makes an interval slower.
        for (b, p) in burst.points.iter().zip(&plain.points) {
            assert_eq!(b.value, p.value);
            assert!(
                b.exec_time <= p.exec_time,
                "interval {}: {} vs {}",
                b.value,
                b.exec_time,
                p.exec_time
            );
        }
    }

    #[test]
    fn burst_faults_never_improve_the_flattened_u_curve() {
        let cfg = PrismConfig::tiny(PrismVersion::B);
        let intervals = [1, 5, 25];
        let clean = checkpoint_interval_sweep_burst(&cfg, &intervals, 0x0C7);
        let faulted = checkpoint_interval_sweep_burst_crash(&cfg, &intervals, 0x0C7);
        assert_eq!(faulted.parameter, "checkpoint_interval_burst_crash");
        assert_eq!(clean.points.len(), faulted.points.len());
        for (f, c) in faulted.points.iter().zip(&clean.points) {
            assert_eq!(f.value, c.value);
            assert!(
                f.exec_time >= c.exec_time,
                "burst faults never speed recovery up at interval {}: {} vs {}",
                f.value,
                f.exec_time,
                c.exec_time
            );
        }
        // Deterministic: same seed, same curve.
        let again = checkpoint_interval_sweep_burst_crash(&cfg, &intervals, 0x0C7);
        for (a, b) in faulted.points.iter().zip(&again.points) {
            assert_eq!(a.exec_time, b.exec_time);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn seeded_checkpoint_interval_sweep_snaps_and_dedups_intervals() {
        let cfg = PrismConfig::tiny(PrismVersion::B);
        // 3 snaps to divisor 2, 4 to itself; 5 and 6 both snap to 5.
        let sweep = checkpoint_interval_sweep(&cfg, &[3, 4, 5, 6], 0x0C7);
        let values: Vec<u64> = sweep.points.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![2, 4, 5]);
        assert!(sweep.points.iter().all(|p| p.exec_time > Time::ZERO));
        assert!(sweep.render().contains("every 5 steps"));
    }

    #[test]
    fn load_inflates_io_bound_slowdown_fastest() {
        let loads = [25, 100, 400];
        let pts = load_factor_points(&loads, Scale::Smoke);
        assert_eq!(pts.len(), 3);

        // Mean bounded slowdown never improves as the load rises (2%
        // slack for event-granularity wobble, matching the other
        // monotone checks).
        let mean = |p: &LoadFactorPoint| (p.io_bsld + p.cpu_bsld) / 2.0;
        assert!(
            pts.windows(2).all(|w| mean(&w[1]) >= mean(&w[0]) * 0.98),
            "{pts:?}"
        );

        // The I/O-bound class degrades faster than the compute-bound
        // class — the shared-ION story the scheduler exists to tell.
        let io_growth = pts[2].io_bsld / pts[0].io_bsld;
        let cpu_growth = pts[2].cpu_bsld / pts[0].cpu_bsld;
        assert!(
            io_growth > cpu_growth,
            "io grew {io_growth:.3}x vs cpu {cpu_growth:.3}x\n{pts:?}"
        );

        // Superlinear for the I/O-bound class: quadrupling the load
        // from the reference point more than quadruples the excess
        // slowdown over 1.0. The compute-bound class degrades gently —
        // even at peak load its excess is under a tenth of the
        // I/O-bound class's.
        let io_excess = |p: &LoadFactorPoint| p.io_bsld - 1.0;
        let cpu_excess = |p: &LoadFactorPoint| p.cpu_bsld - 1.0;
        assert!(io_excess(&pts[2]) > 4.0 * io_excess(&pts[1]), "{pts:?}");
        assert!(cpu_excess(&pts[2]) < 0.1 * io_excess(&pts[2]), "{pts:?}");

        // The whole chain is deterministic.
        let again = load_factor_points(&loads, Scale::Smoke);
        assert_eq!(pts, again);

        // The Sweep wrapper carries the same data for the CLI.
        let sweep = load_factor_sweep(&loads, Scale::Smoke);
        assert_eq!(sweep.parameter, "load_factor");
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.render().contains("load=400%"));
    }

    #[test]
    fn faster_disks_reduce_io_time() {
        let w = PrismConfig::tiny(PrismVersion::A).build();
        let sweep = disk_bandwidth_sweep(&w, &[2, 8, 32]);
        let first = sweep.points.first().expect("points").io_time;
        let last = sweep.points.last().expect("points").io_time;
        assert!(last <= first, "{}", sweep.render());
    }
}
