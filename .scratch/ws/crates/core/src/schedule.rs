//! Multi-tenant scheduling: many jobs, one machine, one shared PFS.
//!
//! The paper measured ESCAT and PRISM in *dedicated* mode and notes
//! that the production Paragon ran space-shared: concurrent jobs held
//! disjoint compute partitions but contended for the same sixteen I/O
//! nodes. This driver supplies that missing half of the story. It
//! feeds a seeded [`JobStream`] through a [`PartitionAllocator`] and a
//! [`QueuePolicy`], running every co-resident job inside **one**
//! simulator event loop against **one** [`Pfs`] instance, so I/O-node
//! queueing, cache pressure, and mesh-link sharing between jobs fall
//! out of the same machinery the dedicated experiments use.
//!
//! ## Identity discipline
//!
//! Each dispatched attempt gets a fresh range of *global* pids (one per
//! compute node of its partition) and a fresh range of global
//! [`FileId`]s; global ids are never reused, so a crashed attempt's
//! in-flight completions can be tombstoned by bumping the job's attempt
//! counter. Mesh placement for a global pid is overridden to its
//! partition cell via [`Pfs::place_compute_node`], which is what makes
//! co-resident jobs pay realistic, position-dependent network costs.
//! Per-job results are reported in *local* coordinates (pid 0 = the
//! job's first node, file 0 = its first file) on the *global* clock,
//! so a single job arriving at t = 0 reproduces its dedicated-mode
//! [`RunResult`] bit for bit.
//!
//! ## Crash handling
//!
//! [`FaultKind::ComputeNodeCrash`] events name a machine cell. If a
//! running job's partition holds that cell, the whole gang dies (the
//! applications are SPMD): the attempt is torn down, its partition is
//! freed immediately, and the job re-enters the back of the queue once
//! the crash's rework latency elapses. Crashes on unallocated cells
//! are absorbed. I/O faults ride in `pfs_cfg.faults` exactly as in
//! dedicated runs and are shared by every co-resident job.

use crate::recovery::RecoveryStats;
use crate::simulator::{run, RunResult, SimError, SimOptions};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_machine::MeshModel;
use sioscope_pfs::{BackendStats, Pfs, PfsConfig, PfsError, ResilienceStats};
use sioscope_sched::{
    AllocPolicy, JobOutcome, JobStream, Partition, PartitionAllocator, QueuePolicy, ScheduleStats,
};
use sioscope_sim::{
    EventQueue, FileId, JobId, NodeId, Pid, RendezvousOutcome, RendezvousTable, Time,
};
use sioscope_trace::{IoEvent, JobMap, TraceRecorder};
use sioscope_workloads::Stmt;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Why a scheduled run failed.
#[derive(Debug)]
pub enum SchedError {
    /// The job stream failed validation.
    InvalidStream(String),
    /// The crash or I/O fault schedule failed validation.
    InvalidFaults(Vec<String>),
    /// A template asks for more nodes than the machine can ever grant.
    JobTooLarge {
        /// Offending template index.
        template: usize,
        /// Nodes requested.
        nodes: u32,
        /// Machine compute capacity.
        capacity: u32,
    },
    /// A dedicated-mode estimate run failed.
    Estimate {
        /// Template whose estimate run failed.
        template: usize,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A file-system call was rejected mid-schedule.
    Pfs {
        /// The job whose statement failed.
        job: JobId,
        /// The failing process (job-local pid).
        pid: Pid,
        /// Statement index within the process's program.
        stmt: usize,
        /// The underlying error.
        source: PfsError,
    },
    /// The calendar drained with unfinished or undispatched jobs.
    Deadlock {
        /// Jobs dispatched but not finished.
        running: usize,
        /// Jobs still waiting in the queue.
        queued: usize,
    },
    /// `max_events` exceeded.
    EventBudgetExceeded(u64),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidStream(e) => write!(f, "invalid job stream: {e}"),
            SchedError::InvalidFaults(problems) => {
                write!(f, "invalid fault schedule: {}", problems.join("; "))
            }
            SchedError::JobTooLarge {
                template,
                nodes,
                capacity,
            } => write!(
                f,
                "template {template} needs {nodes} nodes but the machine has {capacity}"
            ),
            SchedError::Estimate { template, source } => {
                write!(f, "dedicated estimate for template {template}: {source}")
            }
            SchedError::Pfs {
                job,
                pid,
                stmt,
                source,
            } => write!(f, "{job} {pid} stmt {stmt}: {source}"),
            SchedError::Deadlock { running, queued } => write!(
                f,
                "schedule deadlock: {running} running and {queued} queued jobs stranded"
            ),
            SchedError::EventBudgetExceeded(n) => write!(f, "event budget exceeded: {n}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Everything a scheduled run produces.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// Makespan, queue metrics, and per-job outcomes.
    pub stats: ScheduleStats,
    /// Per-job results in [`JobId`] order — local pid/file coordinates
    /// on the global clock (see the module docs).
    pub per_job: Vec<RunResult>,
    /// The merged machine-wide trace in *global* coordinates, sorted.
    pub trace: TraceRecorder,
    /// Global-pid ranges of each job's surviving attempt, for per-job
    /// filtering through `TraceIndex::build_with_jobs`.
    pub job_map: JobMap,
    /// Fault-calendar transitions processed (shared I/O faults).
    pub fault_transitions: u64,
}

/// Event payload for the scheduling calendar.
#[derive(Debug, Clone, Copy)]
enum SEv {
    /// Arrival `i` of the stream enters the queue.
    Arrive(u32),
    /// A crashed job's rework elapsed; it rejoins the queue's back.
    Requeue(u32),
    /// Try to start queued jobs (arrival, completion, or freed nodes).
    TryDispatch,
    /// Resume one process of one job attempt (job-local pid).
    Resume { job: u32, attempt: u32, pid: u32 },
    /// A compute-node crash strikes machine cell `node`.
    Crash { node: u32, rework: Time },
    /// A shared I/O fault window opens or closes.
    FaultTransition,
}

struct JobNode {
    pc: usize,
    issue_time: Time,
    collective_seq: u32,
    finished: bool,
    finish_time: Time,
}

struct Job {
    template: usize,
    arrival: Time,
    /// Dedicated-mode execution time: the EASY estimate and the
    /// stretch/bounded-slowdown denominator.
    dedicated: Time,
    /// Current attempt (bumped on crash; stale events are tombstoned).
    attempt: u32,
    /// Attempts dispatched so far.
    attempts: u32,
    first_start: Option<Time>,
    /// Start instant of the current attempt.
    start: Time,
    partition: Option<Partition>,
    pid_base: u32,
    file_base: u32,
    nodes: Vec<JobNode>,
    unfinished: usize,
    done: bool,
    finish: Time,
    /// Resume events consumed by the current attempt.
    events: u64,
    trace: TraceRecorder,
    res_base: ResilienceStats,
    commits: BTreeMap<u32, Time>,
    rework_lost: Time,
    restart_latency: Time,
    result: Option<RunResult>,
}

fn resilience_delta(now: &ResilienceStats, base: &ResilienceStats) -> ResilienceStats {
    ResilienceStats {
        timeouts: now.timeouts - base.timeouts,
        retries: now.retries - base.retries,
        reroutes: now.reroutes - base.reroutes,
        degraded_reads: now.degraded_reads - base.degraded_reads,
        aborts: now.aborts - base.aborts,
        writethroughs: now.writethroughs - base.writethroughs,
    }
}

/// Collective rendezvous keys must be unique per (job, attempt) so a
/// killed attempt's half-formed groups can never capture arrivals from
/// its successor. Job 0's first attempt keeps `key == seq`, preserving
/// bit-identity with the dedicated-mode simulator.
fn collective_key(job: u32, attempt: u32, seq: u32) -> u64 {
    (u64::from(job) << 40) | (u64::from(attempt) << 32) | u64::from(seq)
}

/// Run every job of `stream` through one shared machine and PFS.
///
/// `crashes` carries [`FaultKind::ComputeNodeCrash`] events on the
/// global clock (other kinds are ignored here — I/O faults belong in
/// `pfs_cfg.faults`). The machine in `pfs_cfg` is used as-is: its
/// `compute_nodes`/mesh describe the whole machine, not one job.
pub fn run_schedule(
    stream: &JobStream,
    policy: QueuePolicy,
    alloc_policy: AllocPolicy,
    crashes: &FaultSchedule,
    mut pfs_cfg: PfsConfig,
    options: SimOptions,
) -> Result<ScheduleOutcome, SchedError> {
    stream.validate().map_err(SchedError::InvalidStream)?;
    let machine = pfs_cfg.machine.clone();
    let mut allocator = PartitionAllocator::for_machine(&machine, alloc_policy);
    for (t, template) in stream.templates.iter().enumerate() {
        let n = template.workload.nodes;
        let (_, h) = allocator.shape_for(n);
        if n > allocator.capacity() || h > machine.mesh.rows {
            return Err(SchedError::JobTooLarge {
                template: t,
                nodes: n,
                capacity: allocator.capacity(),
            });
        }
    }
    let crash_problems = crashes.validate_for(machine.io_nodes, machine.compute_nodes);
    if !crash_problems.is_empty() {
        return Err(SchedError::InvalidFaults(crash_problems));
    }
    if pfs_cfg.faults.engages() {
        let fault_problems = pfs_cfg
            .faults
            .validate_for(machine.io_nodes, machine.compute_nodes);
        if !fault_problems.is_empty() {
            return Err(SchedError::InvalidFaults(fault_problems));
        }
    }
    pfs_cfg.os = stream.templates[0].workload.os;

    // Dedicated-mode estimates: one clean run per template, against the
    // same machine/PFS parameters but with the machine to itself.
    let mut estimates = Vec::with_capacity(stream.templates.len());
    for (t, template) in stream.templates.iter().enumerate() {
        let mut dedicated_cfg = pfs_cfg.clone();
        dedicated_cfg.faults = FaultSchedule::empty();
        let r = run(&template.workload, dedicated_cfg, options.clone()).map_err(|source| {
            SchedError::Estimate {
                template: t,
                source,
            }
        })?;
        estimates.push(r.exec_time);
    }

    let mesh = MeshModel::new(machine.mesh);
    let cols = machine.mesh.cols;
    let mut pfs = Pfs::new(pfs_cfg);

    let mut queue: EventQueue<SEv> = EventQueue::new();
    let mut collectives = RendezvousTable::new();
    let mut fault_transitions = 0u64;
    if let Some(state) = pfs.fault_state() {
        for &t in state.transitions() {
            queue.schedule(t, SEv::FaultTransition);
        }
    }
    for ev in &crashes.events {
        if let FaultKind::ComputeNodeCrash { node, rework } = ev.kind {
            queue.schedule(ev.at, SEv::Crash { node, rework });
        }
    }

    let mut arrivals = stream.initial_arrivals();
    let mut spawned = arrivals.len() as u32;
    for (i, a) in arrivals.iter().enumerate() {
        queue.schedule(a.at, SEv::Arrive(i as u32));
    }

    let mut jobs: Vec<Job> = Vec::new();
    let mut pending: VecDeque<u32> = VecDeque::new();
    // Global pid/file watermarks: bases are monotone, never reused, so
    // a dead attempt's ids can never alias a live one's.
    let mut next_pid: u32 = 0;
    let mut next_file: u32 = 0;
    let mut completions = Vec::new();

    // Start one job on a granted partition: fresh global pid and file
    // ranges, partition-cell mesh placement, all nodes resumed at now.
    macro_rules! dispatch {
        ($j:expr, $part:expr, $now:expr) => {{
            let j = $j as usize;
            let part: Partition = $part;
            let now: Time = $now;
            let workload = &stream.templates[jobs[j].template].workload;
            let n = workload.nodes;
            jobs[j].attempts += 1;
            if jobs[j].first_start.is_none() {
                jobs[j].first_start = Some(now);
            }
            jobs[j].start = now;
            jobs[j].pid_base = next_pid;
            next_pid += n;
            let attempt = jobs[j].attempt;
            for p in 0..n {
                let global = NodeId(jobs[j].pid_base + p);
                pfs.place_compute_node(global, Some(part.position_of(p)));
            }
            jobs[j].file_base = next_file;
            for spec in &workload.files {
                let name = format!("job{j}.a{attempt}/{}", spec.name);
                pfs.create_file_with_size(&name, spec.initial_size);
                next_file += 1;
            }
            jobs[j].nodes = (0..n)
                .map(|_| JobNode {
                    pc: 0,
                    issue_time: Time::ZERO,
                    collective_seq: 0,
                    finished: false,
                    finish_time: Time::ZERO,
                })
                .collect();
            jobs[j].unfinished = n as usize;
            jobs[j].events = 0;
            jobs[j].trace = TraceRecorder::new();
            jobs[j].res_base = pfs.resilience_stats();
            jobs[j].commits.clear();
            jobs[j].partition = Some(part);
            for p in 0..n {
                queue.schedule(
                    now,
                    SEv::Resume {
                        job: j as u32,
                        attempt,
                        pid: p,
                    },
                );
            }
        }};
    }

    while let Some(ev) = queue.pop() {
        if options.max_events > 0 && queue.popped() > options.max_events {
            return Err(SchedError::EventBudgetExceeded(queue.popped()));
        }
        let now = ev.time;
        let (j, attempt, p) = match ev.payload {
            SEv::FaultTransition => {
                fault_transitions += 1;
                continue;
            }
            SEv::Arrive(i) => {
                let a = arrivals[i as usize];
                debug_assert_eq!(jobs.len(), i as usize, "arrivals enter in index order");
                jobs.push(Job {
                    template: a.template,
                    arrival: now,
                    dedicated: estimates[a.template],
                    attempt: 0,
                    attempts: 0,
                    first_start: None,
                    start: Time::ZERO,
                    partition: None,
                    pid_base: 0,
                    file_base: 0,
                    nodes: Vec::new(),
                    unfinished: 0,
                    done: false,
                    finish: Time::ZERO,
                    events: 0,
                    trace: TraceRecorder::new(),
                    res_base: ResilienceStats::default(),
                    commits: BTreeMap::new(),
                    rework_lost: Time::ZERO,
                    restart_latency: Time::ZERO,
                    result: None,
                });
                pending.push_back(i);
                queue.schedule(now, SEv::TryDispatch);
                continue;
            }
            SEv::Requeue(job) => {
                pending.push_back(job);
                queue.schedule(now, SEv::TryDispatch);
                continue;
            }
            SEv::Crash { node, rework } => {
                let victim = jobs.iter().position(|job| {
                    job.partition
                        .as_ref()
                        .is_some_and(|part| part.contains_machine_node(node, cols))
                });
                if let Some(v) = victim {
                    let job = &mut jobs[v];
                    job.attempt += 1; // tombstone every in-flight event
                    job.rework_lost += now.saturating_sub(job.start);
                    job.restart_latency += rework;
                    job.nodes.clear();
                    job.unfinished = 0;
                    job.events = 0;
                    job.trace = TraceRecorder::new();
                    job.commits.clear();
                    let part = job.partition.take().expect("victim was running");
                    allocator.free(&part);
                    queue.schedule(now + rework, SEv::Requeue(v as u32));
                    queue.schedule(now, SEv::TryDispatch);
                }
                continue;
            }
            SEv::TryDispatch => {
                loop {
                    let Some(&head) = pending.front() else { break };
                    let head_nodes = stream.templates[jobs[head as usize].template]
                        .workload
                        .nodes;
                    if let Some(part) = allocator.allocate(head_nodes) {
                        pending.pop_front();
                        dispatch!(head, part, now);
                        continue;
                    }
                    if policy == QueuePolicy::Fcfs {
                        break;
                    }
                    // EASY backfill: give the head a shadow reservation
                    // from the running jobs' dedicated-mode estimates
                    // (capacity-based — partition geometry may still
                    // delay the head; every completion retries).
                    let mut running: Vec<(Time, u32)> = jobs
                        .iter()
                        .filter(|job| job.partition.is_some() && !job.done)
                        .map(|job| (job.start + job.dedicated, job.nodes.len() as u32))
                        .collect();
                    running.sort();
                    let mut avail = allocator.free_nodes();
                    let mut shadow = Time::MAX;
                    let mut extra = 0u32;
                    for (fin, nn) in running {
                        avail += nn;
                        if avail >= head_nodes {
                            shadow = fin;
                            extra = avail - head_nodes;
                            break;
                        }
                    }
                    let rest: Vec<u32> = pending.iter().skip(1).copied().collect();
                    for cand in rest {
                        let c = &jobs[cand as usize];
                        let cn = stream.templates[c.template].workload.nodes;
                        let within_shadow = now + c.dedicated <= shadow;
                        let within_extra = cn <= extra;
                        if !within_shadow && !within_extra {
                            continue;
                        }
                        if let Some(part) = allocator.allocate(cn) {
                            if !within_shadow {
                                extra -= cn;
                            }
                            pending.retain(|&x| x != cand);
                            dispatch!(cand, part, now);
                        }
                    }
                    break;
                }
                continue;
            }
            SEv::Resume { job, attempt, pid } => (job as usize, attempt, pid),
        };

        // Tombstone: a crash bumped the attempt after this was queued.
        if jobs[j].attempt != attempt || jobs[j].done {
            continue;
        }
        jobs[j].events += 1;
        let workload = &stream.templates[jobs[j].template].workload;
        let n = workload.nodes;
        let pid_base = jobs[j].pid_base;
        let file_base = jobs[j].file_base;
        let state = &mut jobs[j].nodes[p as usize];
        debug_assert!(!state.finished, "job {j} pid {p} resumed after finishing");
        let program = &workload.programs[p as usize];

        if state.pc >= program.len() {
            state.finished = true;
            state.finish_time = now;
            jobs[j].unfinished -= 1;
            if jobs[j].unfinished == 0 {
                // Job complete: free its partition, snapshot its
                // result, and let the queue at the nodes.
                let job = &mut jobs[j];
                job.done = true;
                job.finish = now;
                let part = job.partition.take().expect("finished job was running");
                allocator.free(&part);
                let node_finish: Vec<Time> = job.nodes.iter().map(|s| s.finish_time).collect();
                let mut trace = std::mem::take(&mut job.trace);
                trace.sort();
                let recovery = if job.attempts > 1 {
                    RecoveryStats {
                        crashes: job.attempts - 1,
                        attempts: job.attempts,
                        rework: job.rework_lost,
                        restart_latency: job.restart_latency,
                        checkpoint_write_bytes: 0,
                        checkpoint_read_bytes: 0,
                        time_to_solution: now.saturating_sub(job.arrival),
                    }
                } else {
                    RecoveryStats::default()
                };
                job.result = Some(RunResult {
                    name: workload.name.clone(),
                    version: workload.version.clone(),
                    exec_time: now.saturating_sub(job.start),
                    node_finish,
                    trace,
                    events: job.events,
                    resilience: resilience_delta(&pfs.resilience_stats(), &job.res_base),
                    fault_transitions: 0,
                    checkpoint_commits: job.commits.iter().map(|(&k, &t)| (k, t)).collect(),
                    // The shared PFS has no volatile staging tier:
                    // every commit is durable at its commit instant.
                    durable_commits: job.commits.iter().map(|(&k, &t)| (k, t)).collect(),
                    recovery,
                    backend_stats: BackendStats::default(),
                });
                queue.schedule(now, SEv::TryDispatch);
                if let Some(a) = stream.next_arrival_after(spawned, now) {
                    arrivals.push(a);
                    queue.schedule(a.at, SEv::Arrive(spawned));
                    spawned += 1;
                }
            }
            continue;
        }
        let stmt_idx = state.pc;
        state.pc += 1;

        match &program[stmt_idx] {
            Stmt::Compute(d) => {
                queue.schedule(
                    now + *d,
                    SEv::Resume {
                        job: j as u32,
                        attempt,
                        pid: p,
                    },
                );
            }
            Stmt::Io { file, op } => {
                let fid = FileId(file_base + *file);
                jobs[j].nodes[p as usize].issue_time = now;
                completions.clear();
                match pfs.submit_into(now, Pid(pid_base + p), fid, op, &mut completions) {
                    Ok(true) => {
                        for c in completions.drain(..) {
                            // Group completions only span this job's
                            // pids (files are job-private).
                            let local = c.pid.0 - pid_base;
                            let issued = jobs[j].nodes[local as usize].issue_time;
                            jobs[j].trace.record(IoEvent {
                                pid: Pid(local),
                                file: FileId(*file),
                                kind: c.kind,
                                start: issued,
                                duration: c.finish.saturating_sub(issued),
                                bytes: c.bytes,
                                offset: c.offset,
                                mode: c.mode,
                            });
                            queue.schedule(
                                c.finish.max(now),
                                SEv::Resume {
                                    job: j as u32,
                                    attempt,
                                    pid: local,
                                },
                            );
                        }
                    }
                    Ok(false) => {
                        // Blocked in a forming group; the closing
                        // arrival's submit call delivers completions.
                    }
                    Err(source) => {
                        return Err(SchedError::Pfs {
                            job: JobId(j as u32),
                            pid: Pid(p),
                            stmt: stmt_idx,
                            source,
                        });
                    }
                }
            }
            Stmt::CheckpointCommit(k) => {
                let slot = jobs[j].commits.entry(*k).or_insert(Time::ZERO);
                *slot = (*slot).max(now);
                queue.schedule(
                    now,
                    SEv::Resume {
                        job: j as u32,
                        attempt,
                        pid: p,
                    },
                );
            }
            collective @ (Stmt::Barrier | Stmt::Broadcast { .. } | Stmt::Gather { .. }) => {
                let seq = jobs[j].nodes[p as usize].collective_seq;
                jobs[j].nodes[p as usize].collective_seq += 1;
                let key = collective_key(j as u32, attempt, seq);
                match collectives.arrive(key, Pid(p), now, n as usize) {
                    RendezvousOutcome::Waiting => {}
                    RendezvousOutcome::Complete { arrivals, release } => {
                        let base = release + options.collective_overhead;
                        let resume = |queue: &mut EventQueue<SEv>, local: Pid, t: Time| {
                            queue.schedule(
                                t,
                                SEv::Resume {
                                    job: j as u32,
                                    attempt,
                                    pid: local.0,
                                },
                            );
                        };
                        match collective {
                            Stmt::Barrier => {
                                for (lp, _) in arrivals {
                                    resume(&mut queue, lp, base.max(now));
                                }
                            }
                            Stmt::Broadcast { bytes, .. } => {
                                let t = base + mesh.broadcast_time(n, *bytes);
                                for (lp, _) in arrivals {
                                    resume(&mut queue, lp, t.max(now));
                                }
                            }
                            Stmt::Gather {
                                root,
                                bytes_per_node,
                            } => {
                                let root_pid = Pid(*root);
                                let gather_t = base + mesh.broadcast_time(n, *bytes_per_node);
                                for (lp, _) in arrivals {
                                    let t = if lp == root_pid {
                                        gather_t
                                    } else {
                                        base + mesh
                                            .message_time_hops(*bytes_per_node, mesh.diameter() / 2)
                                    };
                                    resume(&mut queue, lp, t.max(now));
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    // Wind-down: every job must have arrived, dispatched, and finished.
    let running = jobs
        .iter()
        .filter(|job| job.partition.is_some() && !job.done)
        .count();
    let queued = pending.len();
    if running > 0 || queued > 0 || jobs.iter().any(|job| !job.done) {
        return Err(SchedError::Deadlock { running, queued });
    }

    // Assemble: per-job results, the merged global trace, and stats.
    let first_arrival = jobs
        .iter()
        .map(|job| job.arrival)
        .min()
        .unwrap_or(Time::ZERO);
    let last_finish = jobs
        .iter()
        .map(|job| job.finish)
        .fold(Time::ZERO, Time::max);
    let makespan = last_finish.saturating_sub(first_arrival);

    let mut per_job = Vec::with_capacity(jobs.len());
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut merged = TraceRecorder::new();
    let mut job_map = JobMap::new();
    for (i, job) in jobs.iter_mut().enumerate() {
        let result = job.result.take().expect("all jobs finished");
        let workload = &stream.templates[job.template].workload;
        job_map.insert(job.pid_base, job.pid_base + workload.nodes, JobId(i as u32));
        for e in result.trace.events() {
            merged.record(IoEvent {
                pid: Pid(e.pid.0 + job.pid_base),
                file: FileId(e.file.0 + job.file_base),
                ..*e
            });
        }
        outcomes.push(JobOutcome {
            job: JobId(i as u32),
            label: stream.templates[job.template].label.clone(),
            template: job.template,
            nodes: workload.nodes,
            arrival: job.arrival,
            first_start: job.first_start.expect("finished job started"),
            finish: job.finish,
            dedicated: job.dedicated,
            attempts: job.attempts,
            io_time: result.trace.total_io_time(),
            events: result.events,
        });
        per_job.push(result);
    }
    merged.sort();

    let stats = ScheduleStats {
        policy: policy.label().to_string(),
        makespan,
        total_events: queue.popped(),
        jobs: outcomes,
        ion_utilization: pfs.ion_utilizations(last_finish),
    };
    Ok(ScheduleOutcome {
        stats,
        per_job,
        trace: merged,
        job_map,
        fault_transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::{IoOp, PfsConfig};
    use sioscope_sched::{JobTemplate, StreamKind};
    use sioscope_sim::Time;
    use sioscope_trace::TraceIndex;
    use sioscope_workloads::{FileSpec, OsRelease, Workload};

    /// One compute burst, then every node reads `io_bytes` from a
    /// shared file — enough I/O to make PFS contention visible.
    fn io_workload(name: &str, nodes: u32, io_bytes: u64, compute: Time) -> Workload {
        let program = vec![
            Stmt::Compute(compute),
            Stmt::Io {
                file: 0,
                op: IoOp::Open,
            },
            Stmt::Io {
                file: 0,
                op: IoOp::Read { size: io_bytes },
            },
            Stmt::Io {
                file: 0,
                op: IoOp::Close,
            },
            Stmt::Barrier,
        ];
        Workload {
            name: name.into(),
            version: "S".into(),
            os: OsRelease::Osf13,
            nodes,
            files: vec![FileSpec {
                name: "data".into(),
                initial_size: 64 << 20,
            }],
            programs: (0..nodes).map(|_| program.clone()).collect(),
            phases: vec![],
        }
    }

    /// A `rows × 4` machine with every cell a compute node, built on
    /// the tiny PFS parameters.
    fn machine(rows: u32) -> PfsConfig {
        let mut cfg = PfsConfig::tiny();
        cfg.machine.mesh.rows = rows;
        cfg.machine.mesh.cols = 4;
        cfg.machine.compute_nodes = rows * 4;
        cfg
    }

    fn scripted(templates: Vec<JobTemplate>, arrivals: Vec<(Time, usize)>) -> JobStream {
        let count = arrivals.len() as u32;
        JobStream {
            kind: StreamKind::Scripted { arrivals },
            seed: 7,
            templates,
            count,
        }
    }

    fn template(label: &str, workload: Workload) -> JobTemplate {
        JobTemplate {
            label: label.into(),
            workload,
            weight: 1,
        }
    }

    #[test]
    fn single_job_schedule_is_bit_identical_to_dedicated() {
        let w = io_workload("solo", 4, 256 << 10, Time::from_millis(10));
        let cfg = machine(1);
        let dedicated = run(&w, cfg.clone(), SimOptions::default()).unwrap();
        let stream = scripted(vec![template("solo", w.clone())], vec![(Time::ZERO, 0)]);
        let out = run_schedule(
            &stream,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &FaultSchedule::empty(),
            cfg,
            SimOptions::default(),
        )
        .unwrap();
        let job = &out.per_job[0];
        assert_eq!(job.exec_time, dedicated.exec_time, "wall clock differs");
        assert_eq!(job.node_finish, dedicated.node_finish);
        assert_eq!(job.trace.events(), dedicated.trace.events());
        assert_eq!(job.events, dedicated.events);
        assert_eq!(job.resilience, dedicated.resilience);
        assert_eq!(job.checkpoint_commits, dedicated.checkpoint_commits);
        assert_eq!(job.recovery, crate::recovery::RecoveryStats::default());
        let o = &out.stats.jobs[0];
        assert_eq!(o.attempts, 1);
        assert_eq!(o.wait(), Time::ZERO);
        assert_eq!(o.response(), dedicated.exec_time);
        assert_eq!(o.dedicated, dedicated.exec_time);
        assert_eq!(out.stats.makespan, dedicated.exec_time);
    }

    #[test]
    fn coresident_jobs_share_the_pfs_and_slow_down() {
        let w = io_workload("mix", 8, 1 << 20, Time::from_millis(1));
        let cfg = machine(4); // 16 nodes: two 8-node jobs co-resident
        let dedicated = run(&w, cfg.clone(), SimOptions::default()).unwrap();
        let stream = scripted(
            vec![template("mix", w)],
            vec![(Time::ZERO, 0), (Time::ZERO, 0)],
        );
        let out = run_schedule(
            &stream,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &FaultSchedule::empty(),
            cfg,
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(out.stats.jobs.len(), 2);
        // Both started immediately (disjoint partitions available)...
        for j in &out.stats.jobs {
            assert_eq!(j.wait(), Time::ZERO);
            assert_eq!(j.attempts, 1);
        }
        // ...but contend for the shared I/O nodes: neither can beat its
        // dedicated time, and at least one is strictly slower.
        assert!(out
            .stats
            .jobs
            .iter()
            .all(|j| j.response() >= dedicated.exec_time));
        assert!(out
            .stats
            .jobs
            .iter()
            .any(|j| j.response() > dedicated.exec_time));
        // The merged trace is fully attributed through the job map.
        let total: usize = out.per_job.iter().map(|r| r.trace.len()).sum();
        assert_eq!(out.trace.len(), total);
        let idx = TraceIndex::build_with_jobs(out.trace.events(), &out.job_map);
        assert_eq!(idx.jobs().count(), 2);
        assert_eq!(
            idx.job_event_count(JobId(0)) + idx.job_event_count(JobId(1)),
            total
        );
        assert_eq!(out.job_map.len(), 2);
    }

    #[test]
    fn fcfs_queues_when_the_machine_is_full() {
        let w = io_workload("full", 4, 128 << 10, Time::from_millis(20));
        let cfg = machine(1); // 4 nodes: the second job must wait
        let stream = scripted(
            vec![template("full", w)],
            vec![(Time::ZERO, 0), (Time::ZERO, 0)],
        );
        let out = run_schedule(
            &stream,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &FaultSchedule::empty(),
            cfg,
            SimOptions::default(),
        )
        .unwrap();
        let (a, b) = (&out.stats.jobs[0], &out.stats.jobs[1]);
        assert_eq!(a.wait(), Time::ZERO);
        assert_eq!(b.first_start, a.finish, "space-sharing: b waits for a");
        assert!(b.stretch() > 1.5, "queue wait shows up in the stretch");
        assert!(out.stats.mean_wait() > 0.0);
    }

    #[test]
    fn compute_node_crash_requeues_and_the_job_still_finishes() {
        let w = io_workload("crashy", 4, 128 << 10, Time::from_millis(50));
        let cfg = machine(4); // crash cell 15 is outside the partition
        let dedicated = run(&w, cfg.clone(), SimOptions::default()).unwrap();
        let mut crashes = FaultSchedule::empty();
        crashes.push(
            Time::from_millis(10),
            FaultKind::ComputeNodeCrash {
                node: 0,
                rework: Time::from_millis(5),
            },
        );
        // A second crash on a never-allocated cell is absorbed.
        crashes.push(
            Time::from_millis(12),
            FaultKind::ComputeNodeCrash {
                node: 15,
                rework: Time::from_millis(5),
            },
        );
        let stream = scripted(vec![template("crashy", w)], vec![(Time::ZERO, 0)]);
        let out = run_schedule(
            &stream,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &crashes,
            cfg,
            SimOptions::default(),
        )
        .unwrap();
        let job = &out.per_job[0];
        let o = &out.stats.jobs[0];
        assert_eq!(o.attempts, 2, "one crash, one requeue");
        assert_eq!(job.recovery.crashes, 1);
        assert_eq!(job.recovery.attempts, 2);
        assert!(job.recovery.rework >= Time::from_millis(10));
        assert_eq!(job.recovery.restart_latency, Time::from_millis(5));
        assert!(o.finish > dedicated.exec_time, "crash costs wall clock");
        assert_eq!(
            job.recovery.time_to_solution,
            o.response(),
            "accounting agrees with the outcome"
        );
        // The final attempt replays the whole program.
        assert_eq!(job.trace.len(), dedicated.trace.len());
    }

    #[test]
    fn easy_backfill_starts_short_jobs_in_the_shadow() {
        let long = io_workload("long", 6, 512 << 10, Time::from_millis(100));
        let wide = io_workload("wide", 8, 128 << 10, Time::from_millis(10));
        let short = io_workload("short", 2, 16 << 10, Time::from_millis(2));
        let cfg = machine(2); // 8 nodes
        let templates = vec![
            template("long", long),
            template("wide", wide),
            template("short", short),
        ];
        let arrivals = vec![
            (Time::ZERO, 0),           // long starts on 6 of 8 nodes
            (Time::from_millis(1), 1), // wide blocks the queue head
            (Time::from_millis(2), 2), // short fits the 2 idle nodes
        ];
        let run_policy = |policy: QueuePolicy| {
            run_schedule(
                &scripted(templates.clone(), arrivals.clone()),
                policy,
                AllocPolicy::FirstFit,
                &FaultSchedule::empty(),
                cfg.clone(),
                SimOptions::default(),
            )
            .unwrap()
        };
        let fcfs = run_policy(QueuePolicy::Fcfs);
        let easy = run_policy(QueuePolicy::EasyBackfill);
        // FCFS strands the short job behind the wide one.
        assert!(fcfs.stats.jobs[2].first_start >= fcfs.stats.jobs[1].first_start);
        // EASY backfills it into the idle nodes within the shadow.
        assert!(
            easy.stats.jobs[2].first_start < easy.stats.jobs[1].first_start,
            "short must start before the wide blocker:\n{}",
            easy.stats.render()
        );
        assert!(easy.stats.jobs[2].wait() < fcfs.stats.jobs[2].wait());
        assert!(easy.stats.mean_wait() < fcfs.stats.mean_wait());
        // The head itself is never starved.
        assert_eq!(easy.stats.jobs[1].attempts, 1);
        assert_eq!(easy.stats.policy, "easy-backfill");
    }

    #[test]
    fn schedules_are_deterministic_and_closed_loops_drain() {
        let a = io_workload("io-heavy", 4, 1 << 20, Time::from_millis(1));
        let b = io_workload("cpu-heavy", 4, 4 << 10, Time::from_millis(40));
        let cfg = machine(2);
        let stream = JobStream {
            kind: StreamKind::Poisson {
                mean_interarrival: Time::from_millis(30),
            },
            seed: 0xD15C,
            templates: vec![template("io-heavy", a.clone()), template("cpu-heavy", b)],
            count: 8,
        };
        let go = || {
            run_schedule(
                &stream,
                QueuePolicy::EasyBackfill,
                AllocPolicy::BestFit,
                &FaultSchedule::empty(),
                cfg.clone(),
                SimOptions::default(),
            )
            .unwrap()
        };
        let r1 = go();
        let r2 = go();
        assert_eq!(r1.stats, r2.stats, "same seed, bit-identical stats");
        assert_eq!(r1.trace.events(), r2.trace.events());
        assert_eq!(r1.stats.jobs.len(), 8);

        // Closed loop: completions spawn successors until `count`.
        let closed = JobStream {
            kind: StreamKind::ClosedLoop {
                population: 2,
                think_time: Time::from_millis(5),
            },
            seed: 3,
            templates: vec![template(
                "loop",
                io_workload("loop", 4, 64 << 10, Time::from_millis(5)),
            )],
            count: 5,
        };
        let out = run_schedule(
            &closed,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &FaultSchedule::empty(),
            cfg.clone(),
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(out.stats.jobs.len(), 5, "the loop drains to count");
        assert!(out.stats.jobs.iter().all(|j| j.finish > Time::ZERO));
    }

    #[test]
    fn oversized_templates_and_bad_streams_fail_fast() {
        let cfg = machine(1); // 4 nodes
        let too_big = scripted(
            vec![template(
                "big",
                io_workload("big", 8, 1 << 10, Time::from_millis(1)),
            )],
            vec![(Time::ZERO, 0)],
        );
        match run_schedule(
            &too_big,
            QueuePolicy::Fcfs,
            AllocPolicy::FirstFit,
            &FaultSchedule::empty(),
            cfg.clone(),
            SimOptions::default(),
        ) {
            Err(SchedError::JobTooLarge {
                nodes, capacity, ..
            }) => {
                assert_eq!(nodes, 8);
                assert_eq!(capacity, 4);
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
        let empty = JobStream {
            kind: StreamKind::Scripted { arrivals: vec![] },
            seed: 0,
            templates: vec![],
            count: 0,
        };
        assert!(matches!(
            run_schedule(
                &empty,
                QueuePolicy::Fcfs,
                AllocPolicy::FirstFit,
                &FaultSchedule::empty(),
                cfg.clone(),
                SimOptions::default(),
            ),
            Err(SchedError::InvalidStream(_))
        ));
        // A crash on a node the machine doesn't have is rejected.
        let mut bad = FaultSchedule::empty();
        bad.push(
            Time::ZERO,
            FaultKind::ComputeNodeCrash {
                node: 99,
                rework: Time::from_millis(1),
            },
        );
        let ok_stream = scripted(
            vec![template(
                "ok",
                io_workload("ok", 4, 1 << 10, Time::from_millis(1)),
            )],
            vec![(Time::ZERO, 0)],
        );
        assert!(matches!(
            run_schedule(
                &ok_stream,
                QueuePolicy::Fcfs,
                AllocPolicy::FirstFit,
                &bad,
                cfg,
                SimOptions::default(),
            ),
            Err(SchedError::InvalidFaults(_))
        ));
    }
}
