//! The simulation event loop.
//!
//! Executes one [`Workload`] — a statement program per compute node —
//! against a [`Pfs`] instance over the machine model, recording every
//! I/O operation in a [`TraceRecorder`] exactly as Pablo's
//! instrumentation library did: issue time, client-observed duration,
//! size, offset, node and operation kind.

use sioscope_machine::MeshModel;
use sioscope_pfs::{
    BackendConfig, BackendStats, Pfs, PfsConfig, PfsError, ResilienceStats, StorageBackend,
};
use sioscope_sim::{EventQueue, FileId, Pid, RendezvousOutcome, RendezvousTable, Time};
use sioscope_trace::{IoEvent, TraceRecorder};
use sioscope_workloads::{Stmt, Workload};
use std::fmt;

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Fixed software overhead of one barrier/broadcast/gather call
    /// beyond the message timing (collective library entry/exit).
    pub collective_overhead: Time,
    /// Abort if the event count exceeds this bound (guards against
    /// runaway workloads). `0` disables the check.
    pub max_events: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            collective_overhead: Time::from_micros(50),
            max_events: 200_000_000,
        }
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum SimError {
    /// The workload failed structural validation.
    InvalidWorkload(Vec<String>),
    /// The fault schedule failed validation against the machine and
    /// workload shape (checked before any faulted run starts).
    InvalidFaults(Vec<String>),
    /// A file-system call was rejected.
    Pfs {
        /// The failing process.
        pid: Pid,
        /// Statement index within the process's program.
        stmt: usize,
        /// The underlying error.
        source: PfsError,
    },
    /// The event queue drained with unfinished programs — a deadlock
    /// (usually mismatched collective participation).
    Deadlock {
        /// Pids that had not finished.
        stuck: Vec<Pid>,
        /// PFS collective groups still forming.
        forming_collectives: usize,
    },
    /// `max_events` exceeded.
    EventBudgetExceeded(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidWorkload(problems) => {
                write!(f, "invalid workload: {}", problems.join("; "))
            }
            SimError::InvalidFaults(problems) => {
                write!(f, "invalid fault schedule: {}", problems.join("; "))
            }
            SimError::Pfs { pid, stmt, source } => {
                write!(f, "{pid} stmt {stmt}: {source}")
            }
            SimError::Deadlock {
                stuck,
                forming_collectives,
            } => write!(
                f,
                "deadlock: {} unfinished pids, {} forming collectives",
                stuck.len(),
                forming_collectives
            ),
            SimError::EventBudgetExceeded(n) => write!(f, "event budget exceeded: {n}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a run.
#[derive(Debug)]
pub struct RunResult {
    /// Workload name.
    pub name: String,
    /// Version label.
    pub version: String,
    /// Wall-clock execution time: the latest completion across nodes.
    pub exec_time: Time,
    /// Per-node completion times.
    pub node_finish: Vec<Time>,
    /// The captured I/O trace (sorted by start time).
    pub trace: TraceRecorder,
    /// Total simulation events processed (including fault-calendar
    /// transitions when a fault schedule engages).
    pub events: u64,
    /// Resilience actions the PFS took (all zero on fault-free runs).
    pub resilience: ResilienceStats,
    /// Fault-calendar transitions processed (fault windows opening or
    /// closing); zero when no fault schedule engages.
    pub fault_transitions: u64,
    /// Checkpoint-commit instants: `(marker, time)` pairs sorted by
    /// marker, where the time is the latest instant any node passed
    /// the marker. Empty for marker-free workloads.
    pub checkpoint_commits: Vec<(u32, Time)>,
    /// Durability verdict per checkpoint commit, parallel to
    /// `checkpoint_commits`: the instant the commit's data is durable
    /// on stable storage, or [`Time::MAX`] if a burst-node crash
    /// destroyed bytes the commit covered (the checkpoint can never be
    /// restored from). Tiers without volatile staging report the
    /// commit instant itself.
    pub durable_commits: Vec<(u32, Time)>,
    /// Recovery accounting, filled in by
    /// [`crate::recovery::run_with_recovery`]; all-zero for plain
    /// runs.
    pub recovery: crate::recovery::RecoveryStats,
    /// Tier-specific counters from the storage backend (all-default
    /// for the plain PFS; the burst buffer's log/drain accounting and
    /// the object store's PUT/GET counts land here).
    pub backend_stats: BackendStats,
}

impl RunResult {
    /// Total client-observed I/O time across all nodes.
    pub fn total_io_time(&self) -> Time {
        self.trace.total_io_time()
    }

    /// I/O share of `nodes × exec_time` — not the paper's metric.
    /// The paper's Table 3 divides summed per-node I/O time by
    /// the (single) total execution time; use
    /// [`RunResult::io_fraction_of_exec`] for that.
    pub fn io_fraction_aggregate(&self) -> f64 {
        let denom = self.exec_time.as_secs_f64() * self.node_finish.len() as f64;
        if denom <= 0.0 {
            0.0
        } else {
            self.total_io_time().as_secs_f64() / denom
        }
    }

    /// Summed I/O time over execution time — can exceed 1 for heavily
    /// concurrent I/O; matches the paper's Table 3 construction where
    /// percentages are per-operation sums over the run's duration.
    pub fn io_fraction_of_exec(&self) -> f64 {
        if self.exec_time.is_zero() {
            0.0
        } else {
            self.total_io_time().as_secs_f64() / self.exec_time.as_secs_f64()
        }
    }
}

/// Event payload.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume one process.
    Resume(Pid),
    /// A fault window opens or closes. No process state changes, but
    /// the boundary lands in the event calendar so the fault timeline
    /// is interleaved with (and visible in) the run's event stream.
    FaultTransition,
}

struct NodeState {
    pc: usize,
    issue_time: Time,
    collective_seq: u32,
    finished: bool,
    finish_time: Time,
}

/// Run `workload` against a fresh PFS built from `pfs_cfg`.
///
/// The PFS machine configuration's `compute_nodes` should equal
/// `workload.nodes`; the OS release is taken from the workload.
pub fn run(
    workload: &Workload,
    mut pfs_cfg: PfsConfig,
    options: SimOptions,
) -> Result<RunResult, SimError> {
    let problems = workload.validate();
    if !problems.is_empty() {
        return Err(SimError::InvalidWorkload(problems));
    }
    // Fail fast on malformed fault scenarios instead of silently
    // dropping out-of-range events mid-run. Gated on `engages` so
    // fault-free runs stay on the exact pre-fault code path.
    if pfs_cfg.faults.engages() {
        let fault_problems = pfs_cfg
            .faults
            .validate_for(pfs_cfg.machine.io_nodes, workload.nodes);
        if !fault_problems.is_empty() {
            return Err(SimError::InvalidFaults(fault_problems));
        }
    }
    pfs_cfg.os = workload.os;
    pfs_cfg.machine.compute_nodes = workload.nodes;
    let mesh = MeshModel::new(pfs_cfg.machine.mesh);
    let mut pfs = Pfs::new(pfs_cfg);
    // Monomorphized over the concrete `Pfs`: same calls, same code
    // path, bit-identical to the pre-trait direct loop (pinned by
    // `tests/backend_equivalence.rs`).
    run_loop(workload, &mesh, &mut pfs, &options)
}

/// Run `workload` against the storage tier `cfg` selects.
///
/// For [`BackendConfig::Pfs`] this is equivalent to [`run`]. Every
/// fault schedule the config carries is validated against its own
/// tier's fault vocabulary before the run starts — a PFS fault on the
/// object store (or vice versa) is an [`SimError::InvalidFaults`],
/// never a silently dropped event.
pub fn run_backend(
    workload: &Workload,
    cfg: &BackendConfig,
    options: SimOptions,
) -> Result<RunResult, SimError> {
    let problems = workload.validate();
    if !problems.is_empty() {
        return Err(SimError::InvalidWorkload(problems));
    }
    let mut cfg = cfg.clone();
    let fault_problems = cfg.validate_faults(workload.nodes);
    if !fault_problems.is_empty() {
        return Err(SimError::InvalidFaults(fault_problems));
    }
    match &mut cfg {
        BackendConfig::Pfs(c) => c.os = workload.os,
        BackendConfig::Burst(b) => b.pfs.os = workload.os,
        BackendConfig::Object(_) => {}
    }
    cfg.machine_mut().compute_nodes = workload.nodes;
    let mesh = MeshModel::new(cfg.machine().mesh);
    let mut backend = cfg.build();
    run_loop(workload, &mesh, &mut *backend, &options)
}

/// The event loop, generic over the storage tier. Called with the
/// concrete [`Pfs`] from [`run`] (monomorphized — no dynamic dispatch
/// on the measured path) and with `dyn StorageBackend` from
/// [`run_backend`].
fn run_loop<B: StorageBackend + ?Sized>(
    workload: &Workload,
    mesh: &MeshModel,
    backend: &mut B,
    options: &SimOptions,
) -> Result<RunResult, SimError> {
    // Create the file table; workload file index i == FileId(i).
    for (i, spec) in workload.files.iter().enumerate() {
        let id = backend.create_file_with_size(&spec.name, spec.initial_size);
        debug_assert_eq!(id.index(), i);
    }

    let n = workload.nodes as usize;
    let mut nodes: Vec<NodeState> = (0..n)
        .map(|_| NodeState {
            pc: 0,
            issue_time: Time::ZERO,
            collective_seq: 0,
            finished: false,
            finish_time: Time::ZERO,
        })
        .collect();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut collectives = RendezvousTable::new();
    let mut trace = TraceRecorder::new();
    let mut checkpoint_commits: std::collections::BTreeMap<u32, Time> =
        std::collections::BTreeMap::new();
    // One completion buffer reused across every submission — the event
    // loop issues millions of ops per run, and `submit`'s per-call
    // vector was the hottest allocation in a profile.
    let mut completions = Vec::new();

    // Interleave the fault calendar with the event calendar: one
    // event per fault-window boundary. A schedule that does not
    // engage contributes nothing, so fault-free runs keep identical
    // event counts.
    let mut fault_transitions = 0u64;
    for t in backend.fault_transition_times() {
        queue.schedule(t, Ev::FaultTransition);
    }

    // Kick every node off at t = 0.
    for pid in 0..n {
        queue.schedule(Time::ZERO, Ev::Resume(Pid(pid as u32)));
    }

    while let Some(ev) = queue.pop() {
        if options.max_events > 0 && queue.popped() > options.max_events {
            return Err(SimError::EventBudgetExceeded(queue.popped()));
        }
        let now = ev.time;
        let pid = match ev.payload {
            Ev::Resume(pid) => pid,
            Ev::FaultTransition => {
                fault_transitions += 1;
                continue;
            }
        };
        let state = &mut nodes[pid.index()];
        debug_assert!(!state.finished, "{pid} resumed after finishing");
        let program = &workload.programs[pid.index()];

        if state.pc >= program.len() {
            state.finished = true;
            state.finish_time = now;
            continue;
        }
        let stmt_idx = state.pc;
        state.pc += 1;

        match &program[stmt_idx] {
            Stmt::Compute(d) => {
                queue.schedule(now + *d, Ev::Resume(pid));
            }
            Stmt::Io { file, op } => {
                let fid = FileId(*file);
                nodes[pid.index()].issue_time = now;
                completions.clear();
                match backend.submit_into(now, pid, fid, op, &mut completions) {
                    Ok(true) => {
                        for c in completions.drain(..) {
                            let issued = nodes[c.pid.index()].issue_time;
                            trace.record(IoEvent {
                                pid: c.pid,
                                file: fid,
                                kind: c.kind,
                                start: issued,
                                duration: c.finish.saturating_sub(issued),
                                bytes: c.bytes,
                                offset: c.offset,
                                mode: c.mode,
                            });
                            queue.schedule(c.finish.max(now), Ev::Resume(c.pid));
                        }
                    }
                    Ok(false) => {
                        // Blocked: completion arrives via the
                        // group-closing arrival's submit call.
                    }
                    Err(source) => {
                        return Err(SimError::Pfs {
                            pid,
                            stmt: stmt_idx,
                            source,
                        });
                    }
                }
            }
            Stmt::CheckpointCommit(k) => {
                // Zero-cost: the commit writes are the ordinary Io
                // statements preceding the marker. Record the latest
                // instant any node passes it and continue immediately.
                let slot = checkpoint_commits.entry(*k).or_insert(Time::ZERO);
                *slot = (*slot).max(now);
                queue.schedule(now, Ev::Resume(pid));
            }
            collective @ (Stmt::Barrier | Stmt::Broadcast { .. } | Stmt::Gather { .. }) => {
                let seq = nodes[pid.index()].collective_seq;
                nodes[pid.index()].collective_seq += 1;
                // Collective keys are global (all nodes execute the
                // same collective sequence).
                match collectives.arrive(u64::from(seq), pid, now, n) {
                    RendezvousOutcome::Waiting => {}
                    RendezvousOutcome::Complete { arrivals, release } => {
                        let base = release + options.collective_overhead;
                        match collective {
                            Stmt::Barrier => {
                                for (p, _) in arrivals {
                                    queue.schedule(base.max(now), Ev::Resume(p));
                                }
                            }
                            Stmt::Broadcast { bytes, .. } => {
                                let t = base + mesh.broadcast_time(workload.nodes, *bytes);
                                for (p, _) in arrivals {
                                    queue.schedule(t.max(now), Ev::Resume(p));
                                }
                            }
                            Stmt::Gather {
                                root,
                                bytes_per_node,
                            } => {
                                // Senders finish after their own
                                // message; the root collects the
                                // reduction tree's worth of data.
                                let root_pid = Pid(*root);
                                let gather_t =
                                    base + mesh.broadcast_time(workload.nodes, *bytes_per_node);
                                for (p, _) in arrivals {
                                    let t = if p == root_pid {
                                        gather_t
                                    } else {
                                        base + mesh
                                            .message_time_hops(*bytes_per_node, mesh.diameter() / 2)
                                    };
                                    queue.schedule(t.max(now), Ev::Resume(p));
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    // Wind-down: every program must have run to completion.
    let stuck: Vec<Pid> = nodes
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.finished)
        .map(|(i, _)| Pid(i as u32))
        .collect();
    if !stuck.is_empty() {
        return Err(SimError::Deadlock {
            stuck,
            forming_collectives: backend.forming_collectives(),
        });
    }

    trace.sort();
    let node_finish: Vec<Time> = nodes.iter().map(|s| s.finish_time).collect();
    let exec_time = node_finish.iter().copied().fold(Time::ZERO, Time::max);
    // Flush background work (burst-buffer drains) so the stats are
    // final; the drain instant lands in `backend_stats`, not in the
    // foreground `exec_time`.
    backend.quiesce(exec_time);
    // Durability verdicts, queried in commit order (the cursor
    // contract: each query covers the window since the last).
    let durable_commits: Vec<(u32, Time)> = checkpoint_commits
        .iter()
        .map(|(&k, &t)| (k, backend.durable_instant(t)))
        .collect();
    Ok(RunResult {
        name: workload.name.clone(),
        version: workload.version.clone(),
        exec_time,
        node_finish,
        trace,
        events: queue.popped(),
        resilience: backend.resilience_stats(),
        fault_transitions,
        checkpoint_commits: checkpoint_commits.into_iter().collect(),
        durable_commits,
        recovery: crate::recovery::RecoveryStats::default(),
        backend_stats: backend.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_pfs::mode::OsRelease;
    use sioscope_pfs::IoMode;
    use sioscope_pfs::IoOp;
    use sioscope_workloads::{EscatConfig, EscatVersion};
    use sioscope_workloads::{FileSpec, PrismConfig, PrismVersion};

    fn tiny_pfs(nodes: u32) -> PfsConfig {
        let mut cfg = PfsConfig::tiny();
        cfg.machine.compute_nodes = nodes;
        cfg
    }

    fn manual_workload() -> Workload {
        Workload {
            name: "manual".into(),
            version: "X".into(),
            os: OsRelease::Osf13,
            nodes: 2,
            files: vec![FileSpec {
                name: "data".into(),
                initial_size: 1 << 20,
            }],
            programs: vec![
                vec![
                    Stmt::Compute(Time::from_secs(1)),
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Open,
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Read { size: 4096 },
                    },
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Close,
                    },
                    Stmt::Barrier,
                ],
                vec![Stmt::Compute(Time::from_secs(2)), Stmt::Barrier],
            ],
            phases: vec![],
        }
    }

    #[test]
    fn manual_workload_runs_and_traces() {
        let w = manual_workload();
        let r = run(&w, tiny_pfs(2), SimOptions::default()).unwrap();
        assert!(r.exec_time >= Time::from_secs(2), "barrier waits for pid 1");
        assert_eq!(r.node_finish.len(), 2);
        // Open + read + close traced.
        assert_eq!(r.trace.len(), 3);
        assert_eq!(r.trace.invariant_violations(), 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let r1 = run(&w, tiny_pfs(w.nodes), SimOptions::default()).unwrap();
        let r2 = run(&w, tiny_pfs(w.nodes), SimOptions::default()).unwrap();
        assert_eq!(r1.exec_time, r2.exec_time);
        assert_eq!(r1.trace.events(), r2.trace.events());
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn escat_tiny_all_versions_complete() {
        for v in EscatVersion::progressions() {
            let w = EscatConfig::tiny(v).build();
            let r = run(&w, tiny_pfs(w.nodes), SimOptions::default())
                .unwrap_or_else(|e| panic!("version {v:?}: {e}"));
            assert!(r.exec_time > Time::ZERO);
            assert!(!r.trace.is_empty());
        }
    }

    #[test]
    fn prism_tiny_all_versions_complete() {
        for v in PrismVersion::all() {
            let w = PrismConfig::tiny(v).build();
            let r = run(&w, tiny_pfs(w.nodes), SimOptions::default())
                .unwrap_or_else(|e| panic!("version {v:?}: {e}"));
            assert!(r.exec_time > Time::ZERO);
            assert!(!r.trace.is_empty());
        }
    }

    #[test]
    fn fault_schedule_inflates_exec_time_and_counts_transitions() {
        use sioscope_faults::FaultKind;
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let clean = run(&w, tiny_pfs(w.nodes), SimOptions::default()).unwrap();
        assert_eq!(clean.fault_transitions, 0);
        assert!(clean.resilience.is_quiet());

        let mut cfg = tiny_pfs(w.nodes);
        cfg.faults.push(
            Time::ZERO,
            FaultKind::IonCrash {
                ion: 0,
                restart: clean.exec_time,
            },
        );
        let faulty = run(&w, cfg, SimOptions::default()).unwrap();
        assert!(faulty.exec_time > clean.exec_time);
        assert_eq!(faulty.fault_transitions, 2, "window start + end");
        assert!(faulty.resilience.timeouts > 0);
        assert!(faulty.resilience.retries > 0);
    }

    #[test]
    fn checkpoint_markers_are_free_and_recorded() {
        use sioscope_workloads::{CheckpointPolicy, Recoverable};
        let cfg = EscatConfig::tiny(EscatVersion::C);
        let plain = run(&cfg.build(), tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        assert!(plain.checkpoint_commits.is_empty());

        let rec = cfg.recoverable(CheckpointPolicy::Fixed { interval: 1 });
        let marked = run(rec.workload(), tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        // Markers are zero-cost: identical wall clock and I/O trace.
        assert_eq!(marked.exec_time, plain.exec_time);
        assert_eq!(marked.trace.events(), plain.trace.events());
        // All markers recorded, in order, at nondecreasing instants.
        let ks: Vec<u32> = marked.checkpoint_commits.iter().map(|(k, _)| *k).collect();
        assert_eq!(ks, (0..rec.checkpoints()).collect::<Vec<_>>());
        for pair in marked.checkpoint_commits.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "commit times are monotone");
        }
        assert!(marked.checkpoint_commits[0].1 > Time::ZERO);

        // Slicing from a marker replays the tail: the replay also
        // completes, faster than the full run.
        let sliced = rec.slice_from(Some(rec.checkpoints() - 1));
        let replay = run(&sliced, tiny_pfs(cfg.nodes), SimOptions::default()).unwrap();
        assert!(replay.exec_time < plain.exec_time);
    }

    #[test]
    fn invalid_fault_schedule_fails_fast() {
        use sioscope_faults::FaultKind;
        let w = manual_workload();
        let mut cfg = tiny_pfs(2);
        // Target an I/O node the tiny machine does not have.
        cfg.faults.push(
            Time::ZERO,
            FaultKind::IonCrash {
                ion: 999,
                restart: Time::from_secs(1),
            },
        );
        let e = run(&w, cfg, SimOptions::default()).unwrap_err();
        assert!(matches!(e, SimError::InvalidFaults(_)), "got {e}");
    }

    #[test]
    fn deadlock_detected_on_mismatched_collectives() {
        let mut w = manual_workload();
        // Pid 0 waits at an extra barrier pid 1 never reaches.
        w.programs[0].push(Stmt::Barrier);
        w.programs[1].push(Stmt::Compute(Time::from_secs(1)));
        // validate() would catch this; bypass it by matching counts
        // but mismatching file collectives instead.
        let e = match run(&w, tiny_pfs(2), SimOptions::default()) {
            Err(e) => e,
            Ok(_) => return, // validation path may reject instead
        };
        match e {
            SimError::Deadlock { .. } | SimError::InvalidWorkload(_) => {}
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn pfs_error_carries_context() {
        let mut w = manual_workload();
        // Read before open.
        w.programs[1] = vec![
            Stmt::Io {
                file: 0,
                op: IoOp::Read { size: 1 },
            },
            Stmt::Compute(Time::from_secs(2)),
            Stmt::Barrier,
        ];
        let e = run(&w, tiny_pfs(2), SimOptions::default()).unwrap_err();
        match e {
            SimError::Pfs { pid, stmt, .. } => {
                assert_eq!(pid, Pid(1));
                assert_eq!(stmt, 0);
            }
            other => panic!("expected pfs error, got {other}"),
        }
    }

    #[test]
    fn run_backend_pfs_tier_matches_run_exactly() {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let direct = run(&w, tiny_pfs(w.nodes), SimOptions::default()).unwrap();
        let routed = run_backend(
            &w,
            &BackendConfig::Pfs(tiny_pfs(w.nodes)),
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(direct.exec_time, routed.exec_time);
        assert_eq!(direct.node_finish, routed.node_finish);
        assert_eq!(direct.trace.events(), routed.trace.events());
        assert_eq!(direct.events, routed.events);
        assert_eq!(routed.backend_stats, BackendStats::default());
    }

    #[test]
    fn all_three_tiers_complete_the_same_workload() {
        use sioscope_pfs::{BurstBufferConfig, ObjectStoreConfig};
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let tiers = [
            BackendConfig::Pfs(tiny_pfs(w.nodes)),
            BackendConfig::Object(ObjectStoreConfig::modern(w.nodes)),
            BackendConfig::Burst(BurstBufferConfig::over(tiny_pfs(w.nodes))),
        ];
        for cfg in tiers {
            let kind = cfg.kind();
            let r = run_backend(&w, &cfg, SimOptions::default())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(r.exec_time > Time::ZERO, "{kind}");
            assert!(!r.trace.is_empty(), "{kind}");
            assert_eq!(r.trace.invariant_violations(), 0, "{kind}");
            assert!(r.backend_stats.conserves_bytes(), "{kind}");
        }
    }

    #[test]
    fn burst_buffer_absorbing_nothing_is_the_plain_pfs() {
        use sioscope_pfs::{BurstAbsorb, BurstBufferConfig};
        let w = EscatConfig::tiny(EscatVersion::C).build();
        let plain = run(&w, tiny_pfs(w.nodes), SimOptions::default()).unwrap();
        let mut cfg = BurstBufferConfig::over(tiny_pfs(w.nodes));
        cfg.absorb = BurstAbsorb::Files(vec![]);
        let buffered = run_backend(&w, &BackendConfig::Burst(cfg), SimOptions::default()).unwrap();
        assert_eq!(plain.exec_time, buffered.exec_time);
        assert_eq!(plain.trace.events(), buffered.trace.events());
        assert_eq!(buffered.backend_stats.bytes_logged, 0);
    }

    #[test]
    fn event_budget_enforced() {
        let w = EscatConfig::tiny(EscatVersion::A).build();
        let opts = SimOptions {
            max_events: 10,
            ..SimOptions::default()
        };
        let e = run(&w, tiny_pfs(w.nodes), opts).unwrap_err();
        assert!(matches!(e, SimError::EventBudgetExceeded(_)));
    }

    #[test]
    fn broadcast_synchronizes_and_costs_network_time() {
        // Root finishes a 1 MB broadcast no earlier than the slowest
        // arrival plus the tree time; all nodes resume together.
        let w = Workload {
            name: "bc".into(),
            version: "X".into(),
            os: OsRelease::Osf13,
            nodes: 3,
            files: vec![FileSpec {
                name: "f".into(),
                initial_size: 0,
            }],
            programs: vec![
                vec![Stmt::Broadcast {
                    root: 0,
                    bytes: 1 << 20,
                }],
                vec![
                    Stmt::Compute(Time::from_secs(2)),
                    Stmt::Broadcast {
                        root: 0,
                        bytes: 1 << 20,
                    },
                ],
                vec![Stmt::Broadcast {
                    root: 0,
                    bytes: 1 << 20,
                }],
            ],
            phases: vec![],
        };
        let r = run(&w, tiny_pfs(3), SimOptions::default()).unwrap();
        // Everyone waits for pid 1's compute, then the broadcast.
        for t in &r.node_finish {
            assert!(*t >= Time::from_secs(2));
        }
        let spread = r.node_finish.iter().copied().fold(Time::ZERO, Time::max)
            - r.node_finish.iter().copied().fold(Time::MAX, Time::min);
        assert!(spread < Time::from_millis(1), "broadcast releases together");
    }

    #[test]
    fn gather_root_finishes_no_earlier_than_senders() {
        let w = Workload {
            name: "g".into(),
            version: "X".into(),
            os: OsRelease::Osf13,
            nodes: 4,
            files: vec![FileSpec {
                name: "f".into(),
                initial_size: 0,
            }],
            programs: (0..4)
                .map(|_| {
                    vec![Stmt::Gather {
                        root: 0,
                        bytes_per_node: 1 << 20,
                    }]
                })
                .collect(),
            phases: vec![],
        };
        let r = run(&w, tiny_pfs(4), SimOptions::default()).unwrap();
        let root = r.node_finish[0];
        for (pid, t) in r.node_finish.iter().enumerate().skip(1) {
            assert!(
                root >= *t,
                "root collects the tree, pid {pid} only sends: {root} vs {t}"
            );
        }
    }

    #[test]
    fn trace_durations_include_collective_waits() {
        // Two nodes gopen; the early arrival's observed duration
        // includes waiting for the late one.
        let w = Workload {
            name: "g".into(),
            version: "X".into(),
            os: OsRelease::Osf13,
            nodes: 2,
            files: vec![FileSpec {
                name: "f".into(),
                initial_size: 0,
            }],
            programs: vec![
                vec![Stmt::Io {
                    file: 0,
                    op: IoOp::Gopen {
                        group: 2,
                        mode: IoMode::MAsync,
                        record_size: None,
                    },
                }],
                vec![
                    Stmt::Compute(Time::from_secs(5)),
                    Stmt::Io {
                        file: 0,
                        op: IoOp::Gopen {
                            group: 2,
                            mode: IoMode::MAsync,
                            record_size: None,
                        },
                    },
                ],
            ],
            phases: vec![],
        };
        let r = run(&w, tiny_pfs(2), SimOptions::default()).unwrap();
        let e0 = r.trace.of_pid(Pid(0)).next().unwrap();
        assert!(
            e0.duration >= Time::from_secs(5),
            "early arrival must observe the wait: {}",
            e0.duration
        );
    }
}
