//! ESCAT experiments: Table 1, Figures 1–5, Tables 2–3.

use crate::experiments::{ExperimentOutput, Scale, ShapeCheck};
use crate::paper;
use crate::simulator::{run, RunResult, SimOptions};
use parking_lot::Mutex;
use sioscope_analysis::plot;
use sioscope_analysis::table::{render_exec_table, render_io_table, ExecTimeTable, IoTimeTable};
use sioscope_analysis::{Cdf, Timeline};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatDataset, EscatVersion, Workload};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use super::Experiment;

/// The PFS configuration ESCAT experiments run against (the Caltech
/// machine; the OS release follows the workload version).
pub fn pfs_config(nodes: u32) -> PfsConfig {
    PfsConfig::caltech(nodes, OsRelease::Osf13)
}

fn config(version: EscatVersion, dataset: EscatDataset, scale: Scale) -> EscatConfig {
    match (scale, dataset) {
        (Scale::Full, EscatDataset::Ethylene) => EscatConfig::ethylene(version),
        (Scale::Full, EscatDataset::CarbonMonoxide) => EscatConfig::carbon_monoxide(version),
        (Scale::Smoke, _) => EscatConfig::tiny(version),
    }
}

type RunKey = (EscatVersion, EscatDataset, Scale);

fn run_cache() -> &'static Mutex<HashMap<RunKey, Arc<RunResult>>> {
    static CACHE: OnceLock<Mutex<HashMap<RunKey, Arc<RunResult>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drop every memoized ESCAT run (benchmarks use this to time cold runs).
pub fn clear_cache() {
    run_cache().lock().clear();
}

/// Run (and memoize) one ESCAT version at a given scale.
pub fn run_version(version: EscatVersion, dataset: EscatDataset, scale: Scale) -> Arc<RunResult> {
    if let Some(hit) = run_cache().lock().get(&(version, dataset, scale)) {
        return Arc::clone(hit);
    }
    let cfg = config(version, dataset, scale);
    let workload = cfg.build();
    let pfs = PfsConfig::caltech(workload.nodes, workload.os);
    let result = run(&workload, pfs, SimOptions::default())
        .unwrap_or_else(|e| panic!("ESCAT {version:?}/{dataset:?} failed: {e}"));
    let arc = Arc::new(result);
    // Warm the trace's columnar index outside the cache lock: every
    // figure/table renderer below queries the same memoized run, so
    // they all share this one build instead of scanning per query.
    arc.trace.index();
    run_cache()
        .lock()
        .insert((version, dataset, scale), Arc::clone(&arc));
    arc
}

fn render_phase_table(title: &str, workloads: &[Workload]) -> String {
    let mut out = format!("{title}\n");
    for w in workloads {
        out.push_str(&format!("Version {} ({}):\n", w.version, w.os));
        for phase in &w.phases {
            let modes: Vec<String> = phase
                .modes
                .iter()
                .map(|(label, m)| format!("{label}: {m}"))
                .collect();
            out.push_str(&format!(
                "  {:<12} {:<10} {}\n",
                phase.phase,
                phase.activity,
                modes.join(", ")
            ));
        }
    }
    out
}

/// Table 1 — node activity and access modes per phase and version.
/// This is configuration metadata, not simulation output.
pub fn table1() -> ExperimentOutput {
    let workloads: Vec<Workload> = [EscatVersion::A, EscatVersion::B, EscatVersion::C]
        .iter()
        .map(|&v| EscatConfig::ethylene(v).build())
        .collect();
    let rendered = render_phase_table(
        "Table 1: Node activity and file access modes (ESCAT)",
        &workloads,
    );
    let mut checks = Vec::new();
    // Table 1's defining entries.
    let a = &workloads[0].phases;
    checks.push(ShapeCheck::new(
        "A phase one: all nodes, M_UNIX",
        a[0].activity == "All Nodes",
        a[0].activity.clone(),
    ));
    let b = &workloads[1].phases;
    checks.push(ShapeCheck::new(
        "B phase three: M_RECORD",
        b[2].modes[0].1 == sioscope_pfs::IoMode::MRecord,
        format!("{}", b[2].modes[0].1),
    ));
    let c = &workloads[2].phases;
    checks.push(ShapeCheck::new(
        "C phase two: M_ASYNC",
        c[1].modes[0].1 == sioscope_pfs::IoMode::MAsync,
        format!("{}", c[1].modes[0].1),
    ));
    ExperimentOutput {
        experiment: Experiment::EscatTable1,
        rendered,
        checks,
    }
}

/// Figure 1 — execution time for the six ESCAT progressions.
pub fn fig1(scale: Scale) -> ExperimentOutput {
    let results: Vec<(String, Time)> = EscatVersion::progressions()
        .iter()
        .map(|&v| {
            let r = run_version(v, EscatDataset::Ethylene, scale);
            (v.label().to_string(), r.exec_time)
        })
        .collect();
    let rendered = plot::bar_chart(
        "Figure 1: Execution time for six ESCAT code progressions",
        &results,
        50,
    );
    let first = results.first().expect("six results").1.as_secs_f64();
    let last = results.last().expect("six results").1.as_secs_f64();
    let reduction = (first - last) / first;
    let mut checks = vec![ShapeCheck::in_range(
        "total execution time reduced ~20% A -> C (paper: 20%)",
        reduction,
        0.12,
        0.30,
    )];
    // Progressive: no later progression slower than version A.
    let worst_later = results[1..]
        .iter()
        .map(|(_, t)| t.as_secs_f64())
        .fold(0.0f64, f64::max);
    checks.push(ShapeCheck::greater(
        "version A is the slowest progression",
        "A",
        first,
        "max(later)",
        worst_later,
    ));
    ExperimentOutput {
        experiment: Experiment::EscatFig1,
        rendered,
        checks,
    }
}

/// Table 2 — aggregate I/O performance summaries (% of I/O time).
pub fn table2(scale: Scale) -> ExperimentOutput {
    let columns: Vec<IoTimeTable> = [EscatVersion::A, EscatVersion::B, EscatVersion::C]
        .iter()
        .map(|&v| {
            let r = run_version(v, EscatDataset::Ethylene, scale);
            IoTimeTable::from_durations(v.label(), &r.trace.duration_by_kind())
        })
        .collect();
    let rendered = render_io_table(
        "Table 2: Aggregate I/O performance summaries (ESCAT), % of I/O time",
        &columns,
    );
    let mut checks = Vec::new();
    // Paper: A dominated by open (53.7) + read (42.6).
    let a = &columns[0];
    checks.push(ShapeCheck::new(
        "A: open+read dominate I/O (paper: 96.3%)",
        a.pct(OpKind::Open) + a.pct(OpKind::Read) > 70.0,
        format!(
            "open {:.1}% + read {:.1}%",
            a.pct(OpKind::Open),
            a.pct(OpKind::Read)
        ),
    ));
    // Paper: B dominated by seek (63.2) with substantial write (28.8).
    let b = &columns[1];
    checks.push(ShapeCheck::new(
        "B: seek is the dominant operation (paper: 63.2%)",
        b.dominant() == Some(OpKind::Seek),
        format!(
            "dominant = {:?} ({:.1}%)",
            b.dominant(),
            b.pct(OpKind::Seek)
        ),
    ));
    checks.push(ShapeCheck::in_range(
        "B: write share substantial (paper: 28.8%)",
        b.pct(OpKind::Write),
        5.0,
        45.0,
    ));
    // Paper: C dominated by write (55.6), gopen visible (21.7), seeks
    // nearly gone (1.75).
    let c = &columns[2];
    checks.push(ShapeCheck::new(
        "C: write is the dominant operation (paper: 55.6%)",
        c.dominant() == Some(OpKind::Write),
        format!(
            "dominant = {:?} ({:.1}%)",
            c.dominant(),
            c.pct(OpKind::Write)
        ),
    ));
    checks.push(ShapeCheck::greater(
        "C: M_ASYNC eliminates seek cost (paper: 63.2% -> 1.75%)",
        "B seek%",
        b.pct(OpKind::Seek),
        "10x C seek%",
        10.0 * c.pct(OpKind::Seek),
    ));
    ExperimentOutput {
        experiment: Experiment::EscatTable2,
        rendered,
        checks,
    }
}

/// Small/large read statistics used by Figure 2's checks.
pub struct ReadSizeStats {
    /// Fraction of read *requests* at or below the small threshold.
    pub small_request_fraction: f64,
    /// Fraction of read *data* moved by large (>= 128 KB) requests.
    pub large_data_fraction: f64,
}

/// Compute read-size stats for one version.
pub fn read_stats(r: &RunResult) -> ReadSizeStats {
    let cdf = Cdf::of_kind(r.trace.index(), OpKind::Read);
    ReadSizeStats {
        small_request_fraction: cdf.fraction_leq(paper::SMALL_REQUEST_BYTES),
        large_data_fraction: 1.0 - cdf.weight_fraction_leq(paper::ESCAT_LARGE_READ_BYTES - 1),
    }
}

/// Figure 2 — CDFs of read/write request sizes and data transferred.
pub fn fig2(scale: Scale) -> ExperimentOutput {
    let ra = run_version(EscatVersion::A, EscatDataset::Ethylene, scale);
    let rc = run_version(EscatVersion::C, EscatDataset::Ethylene, scale);
    let cdf_read_a = Cdf::of_kind(ra.trace.index(), OpKind::Read);
    let cdf_read_c = Cdf::of_kind(rc.trace.index(), OpKind::Read);
    let cdf_write_a = Cdf::of_kind(ra.trace.index(), OpKind::Write);
    let cdf_write_c = Cdf::of_kind(rc.trace.index(), OpKind::Write);

    let mut rendered = String::new();
    rendered.push_str(&plot::cdf_plot(
        "Figure 2a: ESCAT read sizes, version A",
        &cdf_read_a,
        60,
        12,
    ));
    rendered.push_str(&plot::cdf_plot(
        "Figure 2a: ESCAT read sizes, versions B/C",
        &cdf_read_c,
        60,
        12,
    ));
    rendered.push_str(&plot::cdf_plot(
        "Figure 2b: ESCAT write sizes, version A",
        &cdf_write_a,
        60,
        12,
    ));
    rendered.push_str(&plot::cdf_plot(
        "Figure 2b: ESCAT write sizes, versions B/C",
        &cdf_write_c,
        60,
        12,
    ));

    let sa = read_stats(&ra);
    let sc = read_stats(&rc);
    let checks = vec![
        ShapeCheck::in_range(
            "A: ~97% of reads are small (<2 KB)",
            sa.small_request_fraction,
            0.85,
            1.0,
        ),
        ShapeCheck::in_range(
            "B/C: only ~50% of reads are small",
            sc.small_request_fraction,
            0.25,
            0.75,
        ),
        ShapeCheck::in_range(
            "B/C: 128 KB reads transfer ~98% of read data",
            sc.large_data_fraction,
            0.90,
            1.0,
        ),
        ShapeCheck::new(
            "all write requests are small (< 3 KB)",
            cdf_write_c.quantile(1.0).unwrap_or(0) < 3 * 1024
                && cdf_write_a.quantile(1.0).unwrap_or(0) < 3 * 1024,
            format!(
                "max write A = {}, C = {}",
                cdf_write_a.quantile(1.0).unwrap_or(0),
                cdf_write_c.quantile(1.0).unwrap_or(0)
            ),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::EscatFig2,
        rendered,
        checks,
    }
}

fn edge_concentration(tl: &Timeline, exec: Time) -> f64 {
    if tl.is_empty() || exec.is_zero() {
        return 0.0;
    }
    let q1 = exec / 4;
    let q3 = exec - q1;
    let edge = tl
        .points()
        .iter()
        .filter(|&&(t, _)| t <= q1 || t >= q3)
        .count();
    edge as f64 / tl.len() as f64
}

/// Figure 3 — read sizes over execution time, versions A and C.
pub fn fig3(scale: Scale) -> ExperimentOutput {
    let ra = run_version(EscatVersion::A, EscatDataset::Ethylene, scale);
    let rc = run_version(EscatVersion::C, EscatDataset::Ethylene, scale);
    let tl_a = Timeline::of_kind(ra.trace.index(), OpKind::Read);
    let tl_c = Timeline::of_kind(rc.trace.index(), OpKind::Read);
    let mut rendered = String::new();
    rendered.push_str(&plot::scatter_log(
        "Figure 3: ESCAT read sizes vs execution time, version A (log bytes)",
        &tl_a,
        70,
        14,
    ));
    rendered.push_str(&plot::scatter_log(
        "Figure 3: ESCAT read sizes vs execution time, version C (log bytes)",
        &tl_c,
        70,
        14,
    ));
    let checks = vec![
        ShapeCheck::in_range(
            "A: read activity only near beginning and end",
            edge_concentration(&tl_a, ra.exec_time),
            0.9,
            1.0,
        ),
        ShapeCheck::in_range(
            "C: read activity only near beginning and end",
            edge_concentration(&tl_c, rc.exec_time),
            0.9,
            1.0,
        ),
        ShapeCheck::greater(
            "C reloads in 128 KB records vs A's small chunks",
            "C max read",
            tl_c.max_value() as f64,
            "A max final-phase read",
            2.0 * 2048.0,
        ),
        ShapeCheck::greater(
            "initial read burst shrinks A -> C (node zero only)",
            "A reads",
            tl_a.len() as f64,
            "C reads",
            tl_c.len() as f64,
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::EscatFig3,
        rendered,
        checks,
    }
}

/// Figure 4 — write sizes over execution time, versions A and C.
pub fn fig4(scale: Scale) -> ExperimentOutput {
    let ra = run_version(EscatVersion::A, EscatDataset::Ethylene, scale);
    let rc = run_version(EscatVersion::C, EscatDataset::Ethylene, scale);
    let tl_a = Timeline::of_kind(ra.trace.index(), OpKind::Write);
    let tl_c = Timeline::of_kind(rc.trace.index(), OpKind::Write);
    let mut rendered = String::new();
    rendered.push_str(&plot::scatter_linear(
        "Figure 4: ESCAT write sizes vs execution time, version A (bytes)",
        &tl_a,
        70,
        14,
    ));
    rendered.push_str(&plot::scatter_linear(
        "Figure 4: ESCAT write sizes vs execution time, version C (bytes)",
        &tl_c,
        70,
        14,
    ));
    // Version A: node zero coordinates writes with four request
    // sizes; version C: all requests the same size. The check looks at
    // the staging (quadrature) files only — the result-output writes
    // of phase four exist in every version.
    let ch = 2u32; // ethylene channels; quad files are indices 3..3+ch
    let staging_sizes = |r: &RunResult| {
        let mut sizes: Vec<u64> = r
            .trace
            .of_kind(OpKind::Write)
            .filter(|e| (3..3 + ch).contains(&e.file.0))
            .map(|e| e.bytes)
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    };
    let distinct_a = staging_sizes(&ra).len();
    let distinct_c = staging_sizes(&rc).len();
    let checks = vec![
        ShapeCheck::in_range(
            "A: staging writes use four request sizes",
            distinct_a as f64,
            4.0,
            6.0,
        ),
        ShapeCheck::in_range(
            "C: staging writes all one size",
            distinct_c as f64,
            1.0,
            2.0,
        ),
        ShapeCheck::new(
            "writes stay below 3 KB in both versions",
            tl_a.max_value() < 3072 && tl_c.max_value() < 3072,
            format!("max A {} / C {}", tl_a.max_value(), tl_c.max_value()),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::EscatFig4,
        rendered,
        checks,
    }
}

/// Figure 5 — seek durations over execution time, versions B and C.
pub fn fig5(scale: Scale) -> ExperimentOutput {
    let rb = run_version(EscatVersion::B, EscatDataset::Ethylene, scale);
    let rc = run_version(EscatVersion::C, EscatDataset::Ethylene, scale);
    let sd = |r: &RunResult| Timeline::of_durations(r.trace.index(), OpKind::Seek);
    let tl_b = sd(&rb);
    let tl_c = sd(&rc);
    let mut rendered = String::new();
    rendered.push_str(&plot::scatter_linear(
        "Figure 5: ESCAT seek durations vs execution time, version B (ns)",
        &tl_b,
        70,
        12,
    ));
    rendered.push_str(&plot::scatter_linear(
        "Figure 5: ESCAT seek durations vs execution time, version C (ns)",
        &tl_c,
        70,
        12,
    ));
    let max_b = tl_b.max_value() as f64 / 1e9;
    let max_c = tl_c.max_value() as f64 / 1e9;
    let sum = |tl: &Timeline| {
        tl.points()
            .iter()
            .map(|&(_, v)| v as f64 / 1e9)
            .sum::<f64>()
    };
    let checks = vec![
        ShapeCheck::greater(
            "M_ASYNC nearly eliminates seek durations (paper: ~9 s vs ~0.45 s max)",
            "B max seek (s)",
            max_b,
            "50x C max seek (s)",
            50.0 * max_c,
        ),
        ShapeCheck::greater(
            "total seek time collapses B -> C (Table 2: 63.2% -> 1.75%)",
            "B seek total (s)",
            sum(&tl_b),
            "20x C seek total (s)",
            20.0 * sum(&tl_c),
        ),
        ShapeCheck::new(
            "B seeks visibly slower than a local pointer update",
            max_b > 0.003,
            format!("max B seek {max_b:.4}s vs M_ASYNC {max_c:.6}s"),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::EscatFig5,
        rendered,
        checks,
    }
}

/// Table 3 — % of total execution time by I/O operation (ethylene
/// A/B/C and carbon monoxide C).
pub fn table3(scale: Scale) -> ExperimentOutput {
    let mut columns: Vec<ExecTimeTable> = [EscatVersion::A, EscatVersion::B, EscatVersion::C]
        .iter()
        .map(|&v| {
            let r = run_version(v, EscatDataset::Ethylene, scale);
            ExecTimeTable::from_durations(v.label(), &r.trace.duration_by_kind(), r.exec_time)
        })
        .collect();
    let co = run_version(EscatVersion::C, EscatDataset::CarbonMonoxide, scale);
    columns.push(ExecTimeTable::from_durations(
        "C/CO",
        &co.trace.duration_by_kind(),
        co.exec_time,
    ));
    let rendered = render_exec_table(
        "Table 3: Percentage of total execution time by I/O operation type (ESCAT)",
        &columns,
    );
    let (a, b, c, co_col) = (&columns[0], &columns[1], &columns[2], &columns[3]);
    let checks = vec![
        ShapeCheck::in_range(
            "ethylene A: I/O is a small share of execution (paper: 2.97%)",
            a.all_io,
            0.5,
            12.0,
        ),
        ShapeCheck::greater(
            "optimization shrinks I/O share C < A (paper: 0.73 < 2.97)",
            "A all-I/O%",
            a.all_io,
            "C all-I/O%",
            c.all_io,
        ),
        ShapeCheck::greater(
            "B's seek regression raises I/O share above A (paper: 4.60 > 2.97)",
            "B all-I/O%",
            b.all_io,
            "A all-I/O%",
            a.all_io,
        ),
        ShapeCheck::in_range(
            "carbon monoxide C: I/O ~20% of execution (paper: 19.4%)",
            co_col.all_io,
            8.0,
            35.0,
        ),
        ShapeCheck::greater(
            "larger problem makes I/O matter (paper: 19.4% vs 0.73%)",
            "CO all-I/O%",
            co_col.all_io,
            "5x ethylene C all-I/O%",
            5.0 * c.all_io,
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::EscatTable3,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_static_and_passes() {
        let out = table1();
        assert!(out.all_pass(), "{:?}", out.failures());
        assert!(out.rendered.contains("M_RECORD"));
        assert!(out.rendered.contains("M_ASYNC"));
    }

    #[test]
    fn smoke_experiments_run() {
        // Smoke scale exercises the full pipeline cheaply; shape
        // checks are only guaranteed at Full scale.
        for out in [
            fig1(Scale::Smoke),
            table2(Scale::Smoke),
            fig2(Scale::Smoke),
            fig3(Scale::Smoke),
            fig4(Scale::Smoke),
            fig5(Scale::Smoke),
        ] {
            assert!(!out.rendered.is_empty());
            assert!(!out.checks.is_empty());
        }
    }

    #[test]
    fn run_cache_returns_same_arc() {
        let a = run_version(EscatVersion::C, EscatDataset::Ethylene, Scale::Smoke);
        let b = run_version(EscatVersion::C, EscatDataset::Ethylene, Scale::Smoke);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn read_stats_distinguish_small_and_large() {
        let r = run_version(EscatVersion::C, EscatDataset::Ethylene, Scale::Smoke);
        let s = read_stats(&r);
        assert!(s.small_request_fraction >= 0.0 && s.small_request_fraction <= 1.0);
        assert!(s.large_data_fraction >= 0.0 && s.large_data_fraction <= 1.0);
    }
}
