//! Streaming experiments: the in-transit pipeline against the
//! checkpoint-file baseline.
//!
//! The paper's applications hand data between phases through the file
//! system because the Paragon offered nothing else. These experiments
//! ask the evolutionary question for the hand-off itself: route
//! PRISM's checkpoint cadence through (a) a PFS-class file and (b) a
//! bounded staging channel with backpressure, and measure the
//! end-to-end pipeline latency, the producer's stall time, and the
//! staging queue's occupancy.

use crate::coupled::{run_coupled, CoupledOutcome, FileRoute, Route};
use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_sim::Time;
use sioscope_stream::StagingConfig;
use sioscope_workloads::{PrismConfig, PrismVersion, StreamCadence};
use std::fmt::Write as _;

fn cadence(scale: Scale) -> StreamCadence {
    match scale {
        Scale::Smoke => PrismConfig::tiny(PrismVersion::C).stream_cadence(),
        Scale::Full => PrismConfig::test_problem(PrismVersion::C).stream_cadence(),
    }
}

fn stream_at(depth: u64) -> Route {
    Route::Stream(StagingConfig::paragon(depth))
}

fn run(c: &StreamCadence, route: &Route, speed_pct: u32, faults: &FaultSchedule) -> CoupledOutcome {
    run_coupled(c, route, speed_pct, faults).unwrap_or_else(|e| panic!("coupled {}: {e}", c.name))
}

fn outcome_row(rendered: &mut String, label: &str, o: &CoupledOutcome) {
    let _ = writeln!(
        rendered,
        "  {:<22}{:>12.3}s{:>12.3}s{:>12.3}s{:>9}{:>12}",
        label,
        o.pipeline_latency.as_secs_f64(),
        o.producer_stall.as_secs_f64(),
        o.consumer_wait.as_secs_f64(),
        o.chunks,
        o.peak_occupancy,
    );
}

fn header(rendered: &mut String, title: &str) {
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  {:<22}{:>13}{:>13}{:>13}{:>9}{:>12}",
        "route", "pipeline", "prod stall", "cons wait", "chunks", "peak bytes"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(82));
}

/// The coupled PRISM pipeline on the staging channel: queue depths
/// from undersized to unbounded, plus a seeded consumer crash, with
/// the occupancy timeline of the well-provisioned run.
pub fn stream_prism(scale: Scale) -> ExperimentOutput {
    let c = cadence(scale);
    let burst_bytes = c.bursts[0].bytes();
    let tight_depth = c.max_chunk().max(burst_bytes / 8);
    let roomy_depth = 2 * burst_bytes;

    let tight = run(&c, &stream_at(tight_depth), 100, &FaultSchedule::empty());
    let roomy = run(&c, &stream_at(roomy_depth), 100, &FaultSchedule::empty());
    let unbounded = run(&c, &stream_at(0), 100, &FaultSchedule::empty());
    let mut faults = FaultSchedule::empty();
    faults.push(
        Time::ZERO,
        FaultKind::ConsumerCrash {
            stall: roomy.pipeline_latency.max(Time::from_millis(1)),
        },
    );
    let crashed = run(&c, &stream_at(roomy_depth), 100, &faults);

    let mut rendered = String::new();
    header(
        &mut rendered,
        &format!(
            "Streaming PRISM: {} over bounded staging queues ({} bursts, {} B)",
            c.name,
            c.bursts.len(),
            c.total_bytes()
        ),
    );
    outcome_row(&mut rendered, &format!("depth={tight_depth}"), &tight);
    outcome_row(&mut rendered, &format!("depth={roomy_depth}"), &roomy);
    outcome_row(&mut rendered, "depth=unbounded", &unbounded);
    outcome_row(&mut rendered, "consumer-crash", &crashed);
    let _ = writeln!(
        rendered,
        "  occupancy (depth={roomy_depth}): {} samples, peak {} B",
        roomy.occupancy.len(),
        roomy.peak_occupancy
    );

    let checks = vec![
        ShapeCheck::new(
            "byte ledger conserves on every depth".to_string(),
            tight.conserves && roomy.conserves && unbounded.conserves && crashed.conserves,
            format!(
                "{} B delivered on each of 4 runs",
                [&tight, &roomy, &unbounded, &crashed]
                    .iter()
                    .map(|o| o.bytes)
                    .min()
                    .unwrap_or(0)
            ),
        ),
        ShapeCheck::new(
            "undersized depth stalls the producer".to_string(),
            tight.producer_stall > Time::ZERO,
            format!("stall {} at depth {tight_depth}", tight.producer_stall),
        ),
        ShapeCheck::new(
            "adequate depth absorbs every burst stall-free".to_string(),
            roomy.producer_stall == Time::ZERO && unbounded.producer_stall == Time::ZERO,
            format!("stall {} at depth {roomy_depth}", roomy.producer_stall),
        ),
        ShapeCheck::new(
            "consumer crash backpressures the producer".to_string(),
            crashed.producer_stall > Time::ZERO
                && crashed.pipeline_latency > roomy.pipeline_latency,
            format!(
                "crashed stall {}, pipeline {} vs clean {}",
                crashed.producer_stall, crashed.pipeline_latency, roomy.pipeline_latency
            ),
        ),
        ShapeCheck::new(
            "occupancy stays within the configured depth".to_string(),
            roomy.peak_occupancy <= roomy_depth && tight.peak_occupancy <= tight_depth,
            format!(
                "peaks {} / {} vs depths {roomy_depth} / {tight_depth}",
                roomy.peak_occupancy, tight.peak_occupancy
            ),
        ),
    ];

    ExperimentOutput {
        experiment: Experiment::StreamPrism,
        rendered,
        checks,
    }
}

/// The differential: the same cadence through a PFS-class file
/// hand-off and through the staging channel. Streaming must win on
/// end-to-end pipeline latency at adequate depth, and the file route
/// must shrug off a consumer outage that stalls the stream's producer.
pub fn stream_vs_file(scale: Scale) -> ExperimentOutput {
    let c = cadence(scale);
    let depth = 2 * c.bursts[0].bytes();
    let file_route = Route::File(FileRoute::caltech_class());

    let stream = run(&c, &stream_at(depth), 100, &FaultSchedule::empty());
    let file = run(&c, &file_route, 100, &FaultSchedule::empty());
    // One outage long enough to outlive both routes' clean timelines,
    // so neither consumer can simply sleep through dead time it would
    // have spent idle anyway.
    let mut faults = FaultSchedule::empty();
    faults.push(
        Time::ZERO,
        FaultKind::ConsumerCrash {
            stall: stream
                .pipeline_latency
                .max(file.pipeline_latency)
                .max(Time::from_millis(1)),
        },
    );
    let stream_crashed = run(&c, &stream_at(depth), 100, &faults);
    let file_crashed = run(&c, &file_route, 100, &faults);

    let mut rendered = String::new();
    header(
        &mut rendered,
        &format!(
            "Streaming vs file hand-off: {} checkpoint cadence, depth {depth} B",
            c.name
        ),
    );
    outcome_row(&mut rendered, "stream", &stream);
    outcome_row(&mut rendered, "file", &file);
    outcome_row(&mut rendered, "stream+crash", &stream_crashed);
    outcome_row(&mut rendered, "file+crash", &file_crashed);
    let _ = writeln!(
        rendered,
        "  stream pipeline latency: {:.6}s",
        stream.pipeline_latency.as_secs_f64()
    );
    let _ = writeln!(
        rendered,
        "  file pipeline latency: {:.6}s",
        file.pipeline_latency.as_secs_f64()
    );

    let checks = vec![
        ShapeCheck::greater(
            "streaming beats the file hand-off end to end".to_string(),
            "file pipeline (s)",
            file.pipeline_latency.as_secs_f64(),
            "stream pipeline (s)",
            stream.pipeline_latency.as_secs_f64(),
        ),
        ShapeCheck::new(
            "both routes deliver the full payload".to_string(),
            stream.bytes == c.total_bytes() && file.bytes == c.total_bytes(),
            format!("{} B each", c.total_bytes()),
        ),
        ShapeCheck::new(
            "stream producer runs stall-free at adequate depth".to_string(),
            stream.producer_stall == Time::ZERO,
            format!("stall {}", stream.producer_stall),
        ),
        ShapeCheck::new(
            "consumer crash stalls the stream producer only".to_string(),
            stream_crashed.producer_stall > Time::ZERO && file_crashed.producer_stall == Time::ZERO,
            format!(
                "stream stall {}, file stall {}",
                stream_crashed.producer_stall, file_crashed.producer_stall
            ),
        ),
        ShapeCheck::new(
            "durable files still pay the crash on the consumer side".to_string(),
            file_crashed.consumer_wait > file.consumer_wait,
            format!(
                "crashed wait {} vs clean {}",
                file_crashed.consumer_wait, file.consumer_wait
            ),
        ),
    ];

    ExperimentOutput {
        experiment: Experiment::StreamVsFile,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_prism_checks_pass_at_smoke() {
        let out = stream_prism(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("consumer-crash"));
        assert!(out.rendered.contains("occupancy"));
    }

    #[test]
    fn stream_vs_file_checks_pass_at_smoke() {
        let out = stream_vs_file(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("stream pipeline latency"));
        assert!(out.rendered.contains("file pipeline latency"));
    }
}
