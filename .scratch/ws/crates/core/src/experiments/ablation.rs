//! §7 design-principle ablations.
//!
//! The paper closes by recommending request aggregation, prefetching
//! and write-behind so that applications stop hand-tuning around file
//! system idiosyncrasies. These experiments quantify each principle by
//! re-running a paper workload with the policy switched on and
//! comparing client-observed I/O time.

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::simulator::{run, RunResult, SimOptions};
use sioscope_pfs::{PfsConfig, PolicyConfig};
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};
use std::fmt::Write as _;

fn run_with_policy(workload: &Workload, policy: PolicyConfig) -> RunResult {
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.policy = policy;
    run(workload, cfg, SimOptions::default())
        .unwrap_or_else(|e| panic!("{} with {policy:?} failed: {e}", workload.name))
}

fn render_pair(
    title: &str,
    baseline: &RunResult,
    treated: &RunResult,
    policy_name: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  measured PFS     : exec {:>10}, total I/O {:>10}",
        baseline.exec_time,
        baseline.total_io_time()
    );
    let _ = writeln!(
        out,
        "  + {policy_name:<14}: exec {:>10}, total I/O {:>10}",
        treated.exec_time,
        treated.total_io_time()
    );
    let io_speedup = ratio(baseline.total_io_time(), treated.total_io_time());
    let _ = writeln!(out, "  I/O-time speedup : {io_speedup:.2}x");
    out
}

fn ratio(a: Time, b: Time) -> f64 {
    if b.is_zero() {
        f64::INFINITY
    } else {
        a.as_secs_f64() / b.as_secs_f64()
    }
}

fn escat_workload(version: EscatVersion, scale: Scale) -> Workload {
    match scale {
        Scale::Full => EscatConfig::ethylene(version).build(),
        Scale::Smoke => EscatConfig::tiny(version).build(),
    }
}

fn prism_workload(version: PrismVersion, scale: Scale) -> Workload {
    match scale {
        Scale::Full => PrismConfig::test_problem(version).build(),
        Scale::Smoke => PrismConfig::tiny(version).build(),
    }
}

/// Write aggregation: ESCAT version C's small M_ASYNC staging writes,
/// coalesced client-side into stripe-sized requests. The paper (§4.4):
/// "Request aggregation and prefetching by the file system would
/// simplify code structure and eliminate the need for code
/// restructuring."
pub fn aggregation(scale: Scale) -> ExperimentOutput {
    let w = escat_workload(EscatVersion::C, scale);
    let base = run_with_policy(&w, PolicyConfig::measured_pfs());
    let agg = run_with_policy(&w, PolicyConfig::aggregation_only());
    let rendered = render_pair(
        "Ablation: client write aggregation on ESCAT C staging writes",
        &base,
        &agg,
        "aggregation",
    );
    let speedup = ratio(base.total_io_time(), agg.total_io_time());
    let checks = vec![ShapeCheck::new(
        "aggregating small writes reduces total I/O time",
        speedup > 1.0,
        format!("I/O-time speedup {speedup:.2}x"),
    )];
    ExperimentOutput {
        experiment: Experiment::AblationAggregation,
        rendered,
        checks,
    }
}

/// Prefetching on the access pattern §4.4 motivates it for: a
/// sequential small-read scan of staged data with computation between
/// reads — the ESCAT version-A reload pattern, distilled so the
/// benefit is not masked by the unrelated phase-one open storm.
fn sequential_scan_workload(scale: Scale) -> Workload {
    use sioscope_pfs::mode::OsRelease;
    use sioscope_pfs::IoOp;
    use sioscope_sim::Time;
    use sioscope_workloads::{FileSpec, Stmt};
    let (nodes, file_mb, chunk) = match scale {
        Scale::Full => (16u32, 8u64, 4096u64),
        Scale::Smoke => (2, 1, 4096),
    };
    let files: Vec<FileSpec> = (0..nodes)
        .map(|i| FileSpec {
            name: format!("scan/stage{i}"),
            initial_size: file_mb << 20,
        })
        .collect();
    let programs = (0..nodes)
        .map(|pid| {
            let mut prog = vec![Stmt::Io {
                file: pid,
                op: IoOp::Open,
            }];
            let total = file_mb << 20;
            let mut read = 0;
            while read < total {
                prog.push(Stmt::Io {
                    file: pid,
                    op: IoOp::Read { size: chunk },
                });
                prog.push(Stmt::Compute(Time::from_micros(400)));
                read += chunk;
            }
            prog.push(Stmt::Io {
                file: pid,
                op: IoOp::Close,
            });
            prog
        })
        .collect();
    Workload {
        name: "sequential-scan".into(),
        version: "scan".into(),
        os: OsRelease::Osf13,
        nodes,
        files,
        programs,
        phases: vec![],
    }
}

/// Prefetching: the sequential reload pattern with read-ahead enabled.
pub fn prefetch(scale: Scale) -> ExperimentOutput {
    let w = sequential_scan_workload(scale);
    let base = run_with_policy(&w, PolicyConfig::measured_pfs());
    let pf = run_with_policy(&w, PolicyConfig::prefetch_only());
    let rendered = render_pair(
        "Ablation: read-ahead on a sequential staged-data reload",
        &base,
        &pf,
        "read-ahead",
    );
    let speedup = ratio(base.total_io_time(), pf.total_io_time());
    let checks = vec![ShapeCheck::new(
        "prefetching reduces total I/O time for sequential reads",
        speedup > 1.0,
        format!("I/O-time speedup {speedup:.2}x"),
    )];
    ExperimentOutput {
        experiment: Experiment::AblationPrefetch,
        rendered,
        checks,
    }
}

/// Write-behind: asynchronous draining on top of aggregation for
/// ESCAT C.
pub fn write_behind(scale: Scale) -> ExperimentOutput {
    let w = escat_workload(EscatVersion::C, scale);
    let agg = run_with_policy(&w, PolicyConfig::aggregation_only());
    let wb = run_with_policy(&w, PolicyConfig::write_behind_only());
    let rendered = render_pair(
        "Ablation: write-behind vs synchronous aggregation on ESCAT C",
        &agg,
        &wb,
        "write-behind",
    );
    let speedup = ratio(agg.total_io_time(), wb.total_io_time());
    let checks = vec![ShapeCheck::new(
        "asynchronous draining further reduces client-observed I/O time",
        speedup >= 1.0,
        format!("I/O-time speedup over sync aggregation {speedup:.2}x"),
    )];
    ExperimentOutput {
        experiment: Experiment::AblationWriteBehind,
        rendered,
        checks,
    }
}

/// The paper's central counterfactual. §4.4: "Request aggregation and
/// prefetching by the file system would simplify code structure and
/// eliminate the need for code restructuring to exploit file system
/// characteristics." The developers spent eighteen months rewriting
/// version A into version C; this experiment asks how much of that
/// I/O-time win the §7 file-system policies would have delivered to
/// the *unmodified* version A.
pub fn no_restructuring(scale: Scale) -> ExperimentOutput {
    let wa = escat_workload(EscatVersion::A, scale);
    let wb = escat_workload(EscatVersion::B, scale);
    let wc = escat_workload(EscatVersion::C, scale);
    let a_measured = run_with_policy(&wa, PolicyConfig::measured_pfs());
    let a_policies = run_with_policy(&wa, PolicyConfig::recommended());
    let b_measured = run_with_policy(&wb, PolicyConfig::measured_pfs());
    let b_policies = run_with_policy(&wb, PolicyConfig::recommended());
    let c_measured = run_with_policy(&wc, PolicyConfig::measured_pfs());

    let io = |r: &RunResult| r.total_io_time().as_secs_f64();
    // The B -> C rewrite was pure request/mode tuning (M_ASYNC instead
    // of seek-under-M_UNIX) - the part §4.4 says the file system
    // should have provided.
    let bc_manual = io(&b_measured) - io(&c_measured);
    let bc_policy = io(&b_measured) - io(&b_policies);
    let bc_recovered = if bc_manual > 0.0 {
        bc_policy / bc_manual
    } else {
        0.0
    };
    // The A -> C rewrite also removed redundant reads and the open
    // storm - structural changes no FS policy can make.
    let ac_manual = io(&a_measured) - io(&c_measured);
    let ac_policy = io(&a_measured) - io(&a_policies);
    let ac_recovered = if ac_manual > 0.0 {
        ac_policy / ac_manual
    } else {
        0.0
    };

    let mut rendered =
        String::from("Counterfactual: §7 file-system policies applied to the unmodified code\n");
    let _ = writeln!(rendered, "  {:<34}{:>12}", "configuration", "total I/O");
    let _ = writeln!(rendered, "  {}", "-".repeat(46));
    for (label, v) in [
        ("A, measured PFS", io(&a_measured)),
        ("A + aggregation/prefetch/wb", io(&a_policies)),
        ("B, measured PFS", io(&b_measured)),
        ("B + aggregation/prefetch/wb", io(&b_policies)),
        ("C, measured PFS (the rewrite)", io(&c_measured)),
    ] {
        let _ = writeln!(rendered, "  {label:<34}{v:>11.1}s");
    }
    let _ = writeln!(
        rendered,
        "  policies recover {:.0}% of the B->C tuning win without code changes,",
        100.0 * bc_recovered
    );
    let _ = writeln!(
        rendered,
        "  but only {:.0}% of the full A->C win - the structural rewrite\n  (redundancy removal, gopen) is beyond any file-system policy.",
        100.0 * ac_recovered
    );

    let checks = vec![
        ShapeCheck::in_range(
            "§4.4 claim: policies deliver the request-tuning (B->C) win",
            bc_recovered,
            0.5,
            1.5,
        ),
        ShapeCheck::new(
            "FS policies improve even the untouched version A",
            ac_policy > 0.0,
            format!("A I/O: {:.1}s -> {:.1}s", io(&a_measured), io(&a_policies)),
        ),
        ShapeCheck::new(
            "structural restructuring retains value beyond policies",
            io(&a_policies) > io(&c_measured),
            format!(
                "A+policies {:.1}s vs C {:.1}s",
                io(&a_policies),
                io(&c_measured)
            ),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::AblationNoRestructuring,
        rendered,
        checks,
    }
}

/// Adaptive policy selection: §5.4 points to PPFS — "a file system
/// that dynamically tunes its policy to match the requirements of the
/// application access patterns ... is a promising alternative". Run
/// ESCAT version C with (a) the measured PFS, (b) the statically tuned
/// §7 recommendation, and (c) the adaptive detector that enables the
/// same mechanisms per stream on its own. The adaptive configuration
/// should recover most of the statically tuned win with no
/// application-side knowledge.
pub fn adaptive(scale: Scale) -> ExperimentOutput {
    let w = escat_workload(EscatVersion::C, scale);
    let measured = run_with_policy(&w, PolicyConfig::measured_pfs());
    let tuned = run_with_policy(&w, PolicyConfig::recommended());
    let adaptive = run_with_policy(&w, PolicyConfig::adaptive());
    let mut rendered = render_pair(
        "Ablation: adaptive policy selection on ESCAT C",
        &measured,
        &adaptive,
        "adaptive",
    );
    let _ = writeln!(
        rendered,
        "  statically tuned : exec {:>10}, total I/O {:>10}",
        tuned.exec_time,
        tuned.total_io_time()
    );
    let win_tuned = ratio(measured.total_io_time(), tuned.total_io_time());
    let win_adaptive = ratio(measured.total_io_time(), adaptive.total_io_time());
    let recovered = if win_tuned > 1.0 {
        (win_adaptive - 1.0) / (win_tuned - 1.0)
    } else {
        1.0
    };
    let _ = writeln!(
        rendered,
        "  adaptive recovers {:.0}% of the statically tuned I/O-time win",
        100.0 * recovered
    );
    let checks = vec![
        ShapeCheck::new(
            "adaptive beats the measured PFS without application hints",
            win_adaptive > 1.0,
            format!("adaptive speedup {win_adaptive:.2}x"),
        ),
        ShapeCheck::new(
            "adaptive recovers most of the statically tuned win",
            recovered > 0.5,
            format!(
                "recovered {:.0}% (tuned {win_tuned:.2}x, adaptive {win_adaptive:.2}x)",
                100.0 * recovered
            ),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::AblationAdaptive,
        rendered,
        checks,
    }
}

/// Client buffering: PRISM version C with the developers' buffering
/// disable vs. version B's buffered header reads — quantifying the
/// §5.4 observation that "a few small reads can dominate overall I/O
/// time".
pub fn caching(scale: Scale) -> ExperimentOutput {
    // Version C as written (buffering disabled on the restart file).
    let wc = prism_workload(PrismVersion::C, scale);
    let with_disable = run_with_policy(&wc, PolicyConfig::measured_pfs());
    // The counterfactual: same code without the SetBuffering(false)
    // call.
    let mut wc_buffered = wc.clone();
    for prog in &mut wc_buffered.programs {
        prog.retain(|s| {
            !matches!(
                s,
                sioscope_workloads::Stmt::Io {
                    op: sioscope_pfs::IoOp::SetBuffering { enabled: false },
                    ..
                }
            )
        });
    }
    let buffered = run_with_policy(&wc_buffered, PolicyConfig::measured_pfs());
    let mut rendered = render_pair(
        "Ablation: PRISM C with vs without the buffering disable",
        &with_disable,
        &buffered,
        "buffering",
    );
    let read_time = |r: &RunResult| -> Time {
        r.trace
            .of_kind(sioscope_pfs::OpKind::Read)
            .map(|e| e.duration)
            .sum()
    };
    let rt_disabled = read_time(&with_disable);
    let rt_buffered = read_time(&buffered);
    let _ = writeln!(
        rendered,
        "  read time: disabled {rt_disabled}, buffered {rt_buffered}"
    );
    let checks = vec![ShapeCheck::greater(
        "disabling buffering inflates small-read time (paper §5.1)",
        "read time, buffering disabled (s)",
        rt_disabled.as_secs_f64(),
        "read time, buffered (s)",
        rt_buffered.as_secs_f64(),
    )];
    ExperimentOutput {
        experiment: Experiment::AblationCaching,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablations_run() {
        for out in [
            aggregation(Scale::Smoke),
            prefetch(Scale::Smoke),
            write_behind(Scale::Smoke),
            caching(Scale::Smoke),
        ] {
            assert!(!out.rendered.is_empty());
            assert_eq!(out.checks.len(), 1);
        }
        let out = adaptive(Scale::Smoke);
        assert!(!out.rendered.is_empty());
        assert_eq!(out.checks.len(), 2);
    }
}
