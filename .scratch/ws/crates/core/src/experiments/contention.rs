//! Multi-tenant contention experiments: what dedicated-mode
//! characterization misses.
//!
//! The paper measured ESCAT and PRISM with the Paragon's compute
//! partition to themselves, but the production machine space-shared:
//! co-resident jobs held disjoint compute sub-meshes while *sharing*
//! the sixteen I/O nodes and the mesh links to them. These experiments
//! run the missing scenario through the batch scheduler:
//!
//! * [`contention_mix`] — a Poisson stream mixing I/O-bound and
//!   compute-bound jobs on a machine with ample compute nodes but few
//!   I/O nodes. Queueing at the shared I/O nodes hits the I/O-bound
//!   jobs hardest: their mean bounded slowdown exceeds the
//!   compute-bound jobs', even though every job gets its compute
//!   partition promptly.
//! * [`backfill_vs_fcfs`] — a three-job scripted stream (a long
//!   narrow job, a machine-wide blocker, a short narrow job) scheduled
//!   under FCFS and EASY backfill. FCFS strands the short job behind
//!   the blocker; EASY starts it immediately in the blocker's shadow
//!   without delaying the blocker, cutting the mean wait.

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::schedule::{run_schedule, ScheduleOutcome};
use crate::simulator::SimOptions;
use sioscope_faults::FaultSchedule;
use sioscope_pfs::{IoOp, PfsConfig};
use sioscope_sched::{AllocPolicy, JobStream, JobTemplate, QueuePolicy, StreamKind};
use sioscope_sim::Time;
use sioscope_trace::TraceIndex;
use sioscope_workloads::{FileSpec, OsRelease, Stmt, Workload};
use std::fmt::Write as _;

/// Bounded-slowdown threshold for the per-class comparison. The
/// conventional ten-second `DEFAULT_BSLD_TAU` is sized for hour-long
/// production jobs; these synthetic jobs run in milliseconds, and a
/// ten-second floor would clamp every class to 1.0 and erase the
/// contrast the experiment exists to show.
pub(crate) const CLASS_TAU: Time = Time::from_millis(1);

/// Template index of the I/O-bound class in [`mix_stream`].
pub(crate) const IO_BOUND: usize = 0;
/// Template index of the compute-bound class in [`mix_stream`].
pub(crate) const COMPUTE_BOUND: usize = 1;

/// A synthetic SPMD job: one compute burst, then every node streams
/// `io_bytes` through a shared file, then a closing barrier. The
/// compute/io balance is the experiment's knob.
fn job_workload(name: &str, nodes: u32, io_bytes: u64, compute: Time) -> Workload {
    let program = vec![
        Stmt::Compute(compute),
        Stmt::Io {
            file: 0,
            op: IoOp::Open,
        },
        Stmt::Io {
            file: 0,
            op: IoOp::Read { size: io_bytes },
        },
        Stmt::Io {
            file: 0,
            op: IoOp::Close,
        },
        Stmt::Barrier,
    ];
    Workload {
        name: name.into(),
        version: "S".into(),
        os: OsRelease::Osf13,
        nodes,
        files: vec![FileSpec {
            name: "input".into(),
            initial_size: 256 << 20,
        }],
        programs: (0..nodes).map(|_| program.clone()).collect(),
        phases: vec![],
    }
}

/// The shared machine: ample compute nodes, deliberately few I/O
/// nodes, so co-residency contends where the production Paragon did.
pub(crate) fn contended_machine(scale: Scale) -> PfsConfig {
    match scale {
        Scale::Full => {
            let mut cfg = PfsConfig::caltech(64, OsRelease::Osf13);
            cfg.machine.io_nodes = 4;
            cfg
        }
        Scale::Smoke => {
            let mut cfg = PfsConfig::tiny();
            cfg.machine.mesh.rows = 8;
            cfg.machine.mesh.cols = 4;
            cfg.machine.compute_nodes = 32;
            cfg
        }
    }
}

/// The contention-mix job stream at a given Poisson arrival rate.
/// Shared with the `load_factor` sweep, which replays the same seeded
/// job sequence at compressed or dilated inter-arrival times.
///
/// The contrast that matters is the I/O *fraction*, not the I/O
/// volume: an ION backlog of D seconds costs every job the same
/// absolute delay, so it inflates the short I/O-dominated job's
/// slowdown ratio far more than the long compute-dominated one's.
pub(crate) fn mix_stream(scale: Scale, mean_interarrival: Time) -> JobStream {
    let (job_nodes, io_read, cpu_read, count) = match scale {
        Scale::Full => (8, 2 << 20, 64 << 10, 8),
        Scale::Smoke => (4, 512 << 10, 16 << 10, 8),
    };
    let io_bound = job_workload("io-bound", job_nodes, io_read, Time::from_millis(2));
    let compute_bound = job_workload("compute-bound", job_nodes, cpu_read, Time::from_secs(2));
    JobStream {
        kind: StreamKind::Poisson { mean_interarrival },
        seed: 0x5CED_31,
        templates: vec![
            JobTemplate {
                label: "io-bound".into(),
                workload: io_bound,
                weight: 1,
            },
            JobTemplate {
                label: "compute-bound".into(),
                workload: compute_bound,
                weight: 1,
            },
        ],
        count,
    }
}

/// The smoke-scale contention-mix stream at the reference arrival
/// rate — the scheduler benchmark's workload (it raises the job count
/// itself).
pub fn bench_stream() -> JobStream {
    mix_stream(Scale::Smoke, Time::from_millis(20))
}

/// The smoke-scale contended machine the scheduler benchmark runs on.
pub fn bench_machine() -> PfsConfig {
    contended_machine(Scale::Smoke)
}

pub(crate) fn run_stream(
    stream: &JobStream,
    policy: QueuePolicy,
    cfg: PfsConfig,
    what: &str,
) -> ScheduleOutcome {
    run_schedule(
        stream,
        policy,
        AllocPolicy::FirstFit,
        &FaultSchedule::empty(),
        cfg,
        SimOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{what}: {e}"))
}

/// Poisson mix of I/O-bound and compute-bound jobs on shared I/O nodes.
pub fn contention_mix(scale: Scale) -> ExperimentOutput {
    let cfg = contended_machine(scale);
    let machine_nodes = cfg.machine.compute_nodes;
    let ions = cfg.machine.io_nodes;
    let stream = mix_stream(scale, Time::from_millis(20));
    let job_nodes = stream.templates[IO_BOUND].workload.nodes;
    let out = run_stream(&stream, QueuePolicy::Fcfs, cfg, "contention-mix");
    let io_bsld = out.stats.mean_bounded_slowdown_of(IO_BOUND, CLASS_TAU);
    let cpu_bsld = out.stats.mean_bounded_slowdown_of(COMPUTE_BOUND, CLASS_TAU);

    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "Contention mix: {} jobs of {job_nodes} nodes on {machine_nodes} compute nodes, {ions} I/O nodes",
        out.stats.jobs.len(),
    );
    rendered.push_str(&out.stats.render());
    let _ = writeln!(
        rendered,
        "mean bsld by class: io-bound {:?}  compute-bound {:?}",
        io_bsld, cpu_bsld
    );

    let idx = TraceIndex::build_with_jobs(out.trace.events(), &out.job_map);
    let attributed: usize = idx.jobs().map(|j| idx.job_event_count(j)).sum();
    let checks = vec![
        ShapeCheck::new(
            "the stream ran both job classes",
            io_bsld.is_some() && cpu_bsld.is_some(),
            format!("io {io_bsld:?}, cpu {cpu_bsld:?}"),
        ),
        ShapeCheck::new(
            "shared-ION queueing hits I/O-bound jobs hardest",
            io_bsld.unwrap_or(0.0) > cpu_bsld.unwrap_or(f64::MAX),
            format!(
                "{:.3} vs {:.3}",
                io_bsld.unwrap_or(0.0),
                cpu_bsld.unwrap_or(0.0)
            ),
        ),
        // A scheduled partition can land *closer to the I/O nodes*
        // than the dedicated run's origin-anchored placement, so a
        // job may shave a few hops of routing latency off its
        // dedicated time. Allow that sub-0.5% placement jitter; any
        // real speedup from contention would be far larger.
        ShapeCheck::new(
            "no job meaningfully beats its dedicated-mode time",
            out.stats.jobs.iter().all(|j| j.stretch() >= 1.0 - 5e-3),
            format!("min stretch {:.3}", {
                let mut s = f64::MAX;
                for j in &out.stats.jobs {
                    s = s.min(j.stretch());
                }
                s
            }),
        ),
        ShapeCheck::new(
            "the shared I/O nodes saw traffic",
            out.stats.ion_utilization.iter().any(|&u| u > 0.0),
            format!("{:?}", out.stats.ion_utilization),
        ),
        ShapeCheck::new(
            "the merged trace is fully attributed through the job map",
            attributed == out.trace.len() && idx.jobs().count() == out.stats.jobs.len(),
            format!("{attributed} of {} events", out.trace.len()),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::ContentionMix,
        rendered,
        checks,
    }
}

/// FCFS against EASY backfill on a blocker-shaped scripted stream.
pub fn backfill_vs_fcfs(scale: Scale) -> ExperimentOutput {
    let cfg = contended_machine(scale);
    // Scale the three shapes with the machine: the long job leaves a
    // sliver idle, the wide job needs every node, the short job fits
    // the sliver and finishes inside the long job's shadow.
    let total = cfg.machine.compute_nodes;
    let long_nodes = total * 3 / 4;
    let short_nodes = total - long_nodes;
    let long = job_workload("long", long_nodes, 1 << 20, Time::from_millis(150));
    let wide = job_workload("wide", total, 256 << 10, Time::from_millis(20));
    let short = job_workload("short", short_nodes, 32 << 10, Time::from_millis(2));
    let stream = JobStream {
        kind: StreamKind::Scripted {
            arrivals: vec![
                (Time::ZERO, 0),
                (Time::from_millis(1), 1),
                (Time::from_millis(2), 2),
            ],
        },
        seed: 0x5CED_32,
        templates: vec![
            JobTemplate {
                label: "long".into(),
                workload: long,
                weight: 1,
            },
            JobTemplate {
                label: "wide".into(),
                workload: wide,
                weight: 1,
            },
            JobTemplate {
                label: "short".into(),
                workload: short,
                weight: 1,
            },
        ],
        count: 3,
    };
    let fcfs = run_stream(
        &stream,
        QueuePolicy::Fcfs,
        cfg.clone(),
        "backfill-vs-fcfs (fcfs)",
    );
    let easy = run_stream(
        &stream,
        QueuePolicy::EasyBackfill,
        cfg,
        "backfill-vs-fcfs (easy)",
    );

    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "Backfill vs FCFS: long {long_nodes}n + wide {total}n blocker + short {short_nodes}n"
    );
    rendered.push_str(&fcfs.stats.render());
    rendered.push('\n');
    rendered.push_str(&easy.stats.render());
    let _ = writeln!(
        rendered,
        "mean wait: fcfs {:.3}s vs easy {:.3}s",
        fcfs.stats.mean_wait(),
        easy.stats.mean_wait()
    );

    let checks = vec![
        ShapeCheck::new(
            "FCFS strands the short job behind the wide blocker",
            fcfs.stats.jobs[2].first_start >= fcfs.stats.jobs[1].first_start,
            format!(
                "short {} vs wide {}",
                fcfs.stats.jobs[2].first_start, fcfs.stats.jobs[1].first_start
            ),
        ),
        ShapeCheck::new(
            "EASY backfills the short job ahead of the blocker",
            easy.stats.jobs[2].first_start < easy.stats.jobs[1].first_start,
            format!(
                "short {} vs wide {}",
                easy.stats.jobs[2].first_start, easy.stats.jobs[1].first_start
            ),
        ),
        ShapeCheck::new(
            "backfilling cuts the mean wait",
            easy.stats.mean_wait() < fcfs.stats.mean_wait(),
            format!(
                "{:.3}s vs {:.3}s",
                easy.stats.mean_wait(),
                fcfs.stats.mean_wait()
            ),
        ),
        ShapeCheck::new(
            "the shadow protects the blocker from starvation",
            easy.stats.jobs[1].first_start <= fcfs.stats.jobs[1].first_start,
            format!(
                "easy {} vs fcfs {}",
                easy.stats.jobs[1].first_start, fcfs.stats.jobs[1].first_start
            ),
        ),
        ShapeCheck::new(
            "backfilling never inflates the makespan here",
            easy.stats.makespan <= fcfs.stats.makespan,
            format!("{} vs {}", easy.stats.makespan, fcfs.stats.makespan),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::BackfillVsFcfs,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_mix_passes_checks_at_smoke_scale() {
        let out = contention_mix(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("io-bound"));
    }

    #[test]
    fn backfill_vs_fcfs_passes_checks_at_smoke_scale() {
        let out = backfill_vs_fcfs(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("easy-backfill"));
    }

    #[test]
    fn contention_experiments_render_deterministically() {
        let a = contention_mix(Scale::Smoke);
        let b = contention_mix(Scale::Smoke);
        assert_eq!(a.rendered, b.rendered);
        let c = backfill_vs_fcfs(Scale::Smoke);
        let d = backfill_vs_fcfs(Scale::Smoke);
        assert_eq!(c.rendered, d.rendered);
    }
}
