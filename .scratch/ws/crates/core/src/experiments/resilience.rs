//! Resilience experiments: the paper's workloads under injected
//! faults.
//!
//! §7 calls for studying different machine configurations; a machine
//! that is *misbehaving* is the configuration the original study could
//! not hold still long enough to measure. Each experiment runs a
//! paper workload fault-free, then once per fault class with a
//! scenario scaled to the healthy run's length, and reports execution
//! -time inflation alongside the resilience actions (timeouts,
//! retries, re-routes, reduced-stripe reads, aborts) the PFS took to
//! finish the run anyway.

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::simulator::{run, RunResult, SimOptions};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_pfs::PfsConfig;
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};
use std::fmt::Write as _;

fn run_with_faults(workload: &Workload, faults: FaultSchedule) -> RunResult {
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.faults = faults;
    run(workload, cfg, SimOptions::default())
        .unwrap_or_else(|e| panic!("{} under faults failed: {e}", workload.name))
}

/// One scenario per fault class, scaled to the healthy run: faults
/// strike right at the start and their windows cover the whole run,
/// so every workload phase sees them. (The paper's codes concentrate
/// reads in the first seconds and writes at the end; a window that
/// opens even 1% into the run can miss the read burst entirely.)
fn class_scenarios(baseline: Time) -> Vec<(&'static str, FaultSchedule)> {
    let at = Time::from_millis(1);
    let long = baseline.max(Time::from_millis(500));
    let mut out = Vec::new();

    let mut s = FaultSchedule::empty();
    s.push(
        at,
        FaultKind::LatentSector {
            ion: 0,
            duration: long,
            penalty: Time::from_millis(300),
        },
    );
    out.push(("latent-sector", s));

    let mut s = FaultSchedule::empty();
    s.push(
        at,
        FaultKind::SpindleFailure {
            ion: 0,
            rebuild: Some(long),
        },
    );
    out.push(("spindle-failure", s));

    let mut s = FaultSchedule::empty();
    for ion in 0..2 {
        s.push(
            at,
            FaultKind::IonCrash {
                ion,
                restart: baseline.scale(0.5).max(Time::from_millis(500)),
            },
        );
    }
    out.push(("ion-crash", s));

    let mut s = FaultSchedule::empty();
    s.push(
        at,
        FaultKind::IonSlowdown {
            ion: 0,
            duration: long,
            factor: 3.0,
        },
    );
    out.push(("ion-slowdown", s));

    let mut s = FaultSchedule::empty();
    s.push(
        at,
        FaultKind::LinkCongestion {
            duration: long,
            factor: 3.0,
        },
    );
    out.push(("link-congestion", s));

    out
}

fn resilience_experiment(
    experiment: Experiment,
    title: &str,
    workload: &Workload,
) -> ExperimentOutput {
    let baseline = run_with_faults(workload, FaultSchedule::empty());
    let scenarios = class_scenarios(baseline.exec_time);
    let runs: Vec<(&'static str, RunResult)> = scenarios
        .into_iter()
        .map(|(class, faults)| (class, run_with_faults(workload, faults)))
        .collect();

    let mut rendered = String::new();
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  healthy baseline : exec {:>10} ({} events)",
        baseline.exec_time, baseline.events
    );
    let _ = writeln!(
        rendered,
        "  {:<16}{:>12}{:>10}{:>9}{:>9}{:>9}{:>9}{:>8}",
        "fault class", "exec time", "inflate", "timeout", "retry", "reroute", "degr.rd", "abort"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(84));
    for (class, r) in &runs {
        let inflation = if baseline.exec_time.is_zero() {
            1.0
        } else {
            r.exec_time.as_secs_f64() / baseline.exec_time.as_secs_f64()
        };
        let st = r.resilience;
        let _ = writeln!(
            rendered,
            "  {:<16}{:>11.1}s{:>9.2}x{:>9}{:>9}{:>9}{:>9}{:>8}",
            class,
            r.exec_time.as_secs_f64(),
            inflation,
            st.timeouts,
            st.retries,
            st.reroutes,
            st.degraded_reads,
            st.aborts
        );
    }

    fn find<'a>(runs: &'a [(&'static str, RunResult)], class: &str) -> &'a RunResult {
        &runs.iter().find(|(c, _)| *c == class).expect("class ran").1
    }
    let crash = find(&runs, "ion-crash");
    let slowdown = find(&runs, "ion-slowdown");
    let congestion = find(&runs, "link-congestion");
    let checks = vec![
        ShapeCheck::new(
            "baseline run is fault-quiet",
            baseline.resilience.is_quiet() && baseline.fault_transitions == 0,
            format!("{:?}", baseline.resilience),
        ),
        ShapeCheck::new(
            "I/O-node crash triggers timeouts and retries",
            crash.resilience.timeouts > 0 && crash.resilience.retries > 0,
            format!("{:?}", crash.resilience),
        ),
        ShapeCheck::new(
            "reads survive the crash by re-routing",
            crash.resilience.reroutes > 0,
            format!("{:?}", crash.resilience),
        ),
        // Compare client-observed I/O time, not wall-clock time: at
        // full scale these codes are compute-bound (Table 3 puts I/O
        // under 1% of ESCAT C's runtime), so a disturbance that does
        // not touch the slowest node's critical path leaves exec_time
        // bit-identical while every affected operation still pays.
        ShapeCheck::new(
            "I/O-node slowdown inflates total I/O time",
            slowdown.total_io_time() > baseline.total_io_time(),
            format!(
                "{} vs {}",
                slowdown.total_io_time(),
                baseline.total_io_time()
            ),
        ),
        ShapeCheck::new(
            "link congestion inflates total I/O time",
            congestion.total_io_time() > baseline.total_io_time(),
            format!(
                "{} vs {}",
                congestion.total_io_time(),
                baseline.total_io_time()
            ),
        ),
        ShapeCheck::new(
            "no fault class is fatal",
            runs.iter().all(|(_, r)| !r.exec_time.is_zero()),
            format!("{} classes ran", runs.len()),
        ),
    ];
    ExperimentOutput {
        experiment,
        rendered,
        checks,
    }
}

/// ESCAT (version C — the production progression) under each fault
/// class.
pub fn escat(scale: Scale) -> ExperimentOutput {
    let w = match scale {
        Scale::Full => EscatConfig::ethylene(EscatVersion::C).build(),
        Scale::Smoke => EscatConfig::tiny(EscatVersion::C).build(),
    };
    resilience_experiment(
        Experiment::ResilienceEscat,
        "Resilience: ESCAT C under each fault class",
        &w,
    )
}

/// PRISM (version B) under each fault class.
pub fn prism(scale: Scale) -> ExperimentOutput {
    let w = match scale {
        Scale::Full => PrismConfig::test_problem(PrismVersion::B).build(),
        Scale::Smoke => PrismConfig::tiny(PrismVersion::B).build(),
    };
    resilience_experiment(
        Experiment::ResiliencePrism,
        "Resilience: PRISM B under each fault class",
        &w,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escat_resilience_passes_checks_at_smoke_scale() {
        let out = escat(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("ion-crash"));
    }

    #[test]
    fn prism_resilience_passes_checks_at_smoke_scale() {
        let out = prism(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("link-congestion"));
    }
}
