//! PRISM experiments: Table 4, Figures 6–9, Table 5.

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::paper;
use crate::simulator::{run, RunResult, SimOptions};
use parking_lot::Mutex;
use sioscope_analysis::plot;
use sioscope_analysis::table::{render_io_table, IoTimeTable};
use sioscope_analysis::{Cdf, Timeline};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::Time;
use sioscope_workloads::{PrismConfig, PrismVersion, Workload};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The PFS configuration PRISM experiments run against.
pub fn pfs_config(nodes: u32) -> PfsConfig {
    PfsConfig::caltech(nodes, OsRelease::Osf13)
}

fn config(version: PrismVersion, scale: Scale) -> PrismConfig {
    match scale {
        Scale::Full => PrismConfig::test_problem(version),
        Scale::Smoke => PrismConfig::tiny(version),
    }
}

type RunKey = (PrismVersion, Scale);

fn run_cache() -> &'static Mutex<HashMap<RunKey, Arc<RunResult>>> {
    static CACHE: OnceLock<Mutex<HashMap<RunKey, Arc<RunResult>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drop every memoized PRISM run (benchmarks use this to time cold runs).
pub fn clear_cache() {
    run_cache().lock().clear();
}

/// Run (and memoize) one PRISM version at a given scale.
pub fn run_version(version: PrismVersion, scale: Scale) -> Arc<RunResult> {
    if let Some(hit) = run_cache().lock().get(&(version, scale)) {
        return Arc::clone(hit);
    }
    let cfg = config(version, scale);
    let workload = cfg.build();
    let pfs = PfsConfig::caltech(workload.nodes, workload.os);
    let result = run(&workload, pfs, SimOptions::default())
        .unwrap_or_else(|e| panic!("PRISM {version:?} failed: {e}"));
    let arc = Arc::new(result);
    // Warm the trace's columnar index outside the cache lock (shared
    // by every figure/table renderer hitting this memoized run).
    arc.trace.index();
    run_cache()
        .lock()
        .insert((version, scale), Arc::clone(&arc));
    arc
}

/// Table 4 — node activity and access modes per phase and version
/// (configuration metadata).
pub fn table4() -> ExperimentOutput {
    let workloads: Vec<Workload> = PrismVersion::all()
        .iter()
        .map(|&v| PrismConfig::test_problem(v).build())
        .collect();
    let mut rendered = String::from("Table 4: Node activity and file access modes (PRISM)\n");
    for w in &workloads {
        rendered.push_str(&format!("Version {} ({}):\n", w.version, w.os));
        for phase in &w.phases {
            let modes: Vec<String> = phase
                .modes
                .iter()
                .map(|(label, m)| format!("{label}: {m}"))
                .collect();
            rendered.push_str(&format!(
                "  {:<12} {:<10} {}\n",
                phase.phase,
                phase.activity,
                modes.join(", ")
            ));
        }
    }
    let b = &workloads[1].phases;
    let c = &workloads[2].phases;
    let checks = vec![
        ShapeCheck::new(
            "A uses M_UNIX everywhere",
            workloads[0].phases.iter().all(|p| {
                p.modes
                    .iter()
                    .all(|(_, m)| *m == sioscope_pfs::IoMode::MUnix)
            }),
            "all phases M_UNIX",
        ),
        ShapeCheck::new(
            "B reads the restart body via M_RECORD",
            b[0].modes
                .iter()
                .any(|(l, m)| l == "R(b)" && *m == sioscope_pfs::IoMode::MRecord),
            format!("{:?}", b[0].modes),
        ),
        ShapeCheck::new(
            "C reads the restart file via M_ASYNC",
            c[0].modes
                .iter()
                .any(|(l, m)| l == "R" && *m == sioscope_pfs::IoMode::MAsync),
            format!("{:?}", c[0].modes),
        ),
        ShapeCheck::new(
            "B and C write the field file via M_ASYNC from all nodes",
            b[2].activity == "All Nodes" && c[2].activity == "All Nodes",
            format!("B: {}, C: {}", b[2].activity, c[2].activity),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismTable4,
        rendered,
        checks,
    }
}

/// Figure 6 — execution times of the three PRISM versions.
pub fn fig6(scale: Scale) -> ExperimentOutput {
    let results: Vec<(String, Time)> = PrismVersion::all()
        .iter()
        .map(|&v| {
            let r = run_version(v, scale);
            (v.label().to_string(), r.exec_time)
        })
        .collect();
    let rendered = plot::bar_chart(
        "Figure 6: Execution time for three PRISM code versions",
        &results,
        50,
    );
    let a = results[0].1.as_secs_f64();
    let b = results[1].1.as_secs_f64();
    let c = results[2].1.as_secs_f64();
    let reduction = (a - c) / a;
    let checks = vec![
        ShapeCheck::in_range(
            "execution time reduced ~23% A -> C (paper: 23%)",
            reduction,
            0.14,
            0.32,
        ),
        ShapeCheck::new(
            "monotone improvement A > B > C",
            a > b && b > c,
            format!("A {a:.0}s, B {b:.0}s, C {c:.0}s"),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismFig6,
        rendered,
        checks,
    }
}

/// Table 5 — aggregate I/O performance summaries (% of I/O time).
pub fn table5(scale: Scale) -> ExperimentOutput {
    let columns: Vec<IoTimeTable> = PrismVersion::all()
        .iter()
        .map(|&v| {
            let r = run_version(v, scale);
            IoTimeTable::from_durations(v.label(), &r.trace.duration_by_kind())
        })
        .collect();
    let rendered = render_io_table(
        "Table 5: Aggregate I/O performance summaries (PRISM), % of I/O time",
        &columns,
    );
    let (a, b, c) = (&columns[0], &columns[1], &columns[2]);
    let checks = vec![
        ShapeCheck::new(
            "A: open dominates I/O (paper: 75.4%)",
            a.dominant() == Some(OpKind::Open),
            format!(
                "dominant = {:?} ({:.1}%)",
                a.dominant(),
                a.pct(OpKind::Open)
            ),
        ),
        ShapeCheck::new(
            "B: open still dominates (paper: 57.4%)",
            b.dominant() == Some(OpKind::Open),
            format!(
                "dominant = {:?} ({:.1}%)",
                b.dominant(),
                b.pct(OpKind::Open)
            ),
        ),
        ShapeCheck::in_range(
            "B: setiomode becomes visible (paper: 17.75%)",
            b.pct(OpKind::Iomode),
            2.0,
            40.0,
        ),
        ShapeCheck::new(
            "C: read dominates after gopen removes open cost (paper: 83.9%)",
            c.dominant() == Some(OpKind::Read),
            format!(
                "dominant = {:?} ({:.1}%)",
                c.dominant(),
                c.pct(OpKind::Read)
            ),
        ),
        ShapeCheck::greater(
            "open share collapses B -> C (paper: 57.4% -> 3.4%)",
            "B open%",
            b.pct(OpKind::Open),
            "5x C open%",
            5.0 * c.pct(OpKind::Open),
        ),
        ShapeCheck::greater(
            "write share grows with concurrent field writes A -> B (paper: 1.8% -> 9.9%)",
            "B write%",
            b.pct(OpKind::Write),
            "A write%",
            a.pct(OpKind::Write),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismTable5,
        rendered,
        checks,
    }
}

/// Figure 7 — CDFs of read and write sizes.
pub fn fig7(scale: Scale) -> ExperimentOutput {
    let ra = run_version(PrismVersion::A, scale);
    let rc = run_version(PrismVersion::C, scale);
    let read_a = Cdf::of_kind(ra.trace.index(), OpKind::Read);
    let read_c = Cdf::of_kind(rc.trace.index(), OpKind::Read);
    let write_c = Cdf::of_kind(rc.trace.index(), OpKind::Write);
    let mut rendered = String::new();
    rendered.push_str(&plot::cdf_plot(
        "Figure 7a: PRISM read sizes, versions A/B",
        &read_a,
        60,
        12,
    ));
    rendered.push_str(&plot::cdf_plot(
        "Figure 7a: PRISM read sizes, version C",
        &read_c,
        60,
        12,
    ));
    rendered.push_str(&plot::cdf_plot(
        "Figure 7b: PRISM write sizes (all versions)",
        &write_c,
        60,
        12,
    ));

    let tiny_fraction_a = read_a.fraction_leq(64);
    let tiny_fraction_c = read_c.fraction_leq(64);
    let big_data = 1.0 - read_a.weight_fraction_leq(150_000);
    let checks = vec![
        ShapeCheck::in_range(
            "A/B: most reads are tiny (< 40-60 bytes)",
            tiny_fraction_a,
            0.7,
            1.0,
        ),
        ShapeCheck::greater(
            "C's binary connectivity reduces the small-read share (§5.2)",
            "A tiny-read fraction",
            tiny_fraction_a,
            "C tiny-read fraction",
            tiny_fraction_c,
        ),
        ShapeCheck::in_range(
            "few >150 KB requests carry most read data",
            big_data,
            0.7,
            1.0,
        ),
        ShapeCheck::new(
            "write sizes span small records to 155,584-byte slices",
            write_c.quantile(1.0) == Some(paper::PRISM_BODY_RECORD)
                && write_c.quantile(0.0).unwrap_or(u64::MAX) < 1024,
            format!(
                "min {:?}, max {:?}",
                write_c.quantile(0.0),
                write_c.quantile(1.0)
            ),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismFig7,
        rendered,
        checks,
    }
}

/// Figure 8 — read-size timelines for all three versions.
pub fn fig8(scale: Scale) -> ExperimentOutput {
    let runs: Vec<(PrismVersion, Arc<RunResult>)> = PrismVersion::all()
        .iter()
        .map(|&v| (v, run_version(v, scale)))
        .collect();
    let mut rendered = String::new();
    let mut spans = HashMap::new();
    let mut read_time = HashMap::new();
    for (v, r) in &runs {
        let tl = Timeline::of_kind(r.trace.index(), OpKind::Read);
        rendered.push_str(&plot::scatter_log(
            &format!(
                "Figure 8: PRISM read sizes vs execution time, version {} (log bytes)",
                v.label()
            ),
            &tl,
            70,
            12,
        ));
        spans.insert(*v, tl.span());
        read_time.insert(*v, r.trace.index().duration_of(OpKind::Read));
    }
    let ra = read_time[&PrismVersion::A].as_secs_f64();
    let rb = read_time[&PrismVersion::B].as_secs_f64();
    let rc = read_time[&PrismVersion::C].as_secs_f64();
    let checks = vec![
        ShapeCheck::greater(
            "total read time decreases A -> B (paper: by 125 s)",
            "A read time (s)",
            ra,
            "B read time (s)",
            rb,
        ),
        ShapeCheck::greater(
            "collective modes compact B's read phase vs A (span)",
            "A read span (s)",
            spans[&PrismVersion::A].as_secs_f64(),
            "B read span (s)",
            spans[&PrismVersion::B].as_secs_f64(),
        ),
        ShapeCheck::greater(
            "disabling buffering lengthens C's reads vs B (paper §5.3)",
            "C read time (s)",
            rc,
            "B read time (s)",
            rb,
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismFig8,
        rendered,
        checks,
    }
}

/// Figure 9 — write-size timeline for version C with five visible
/// checkpoints.
pub fn fig9(scale: Scale) -> ExperimentOutput {
    let rc = run_version(PrismVersion::C, scale);
    let tl = Timeline::of_kind(rc.trace.index(), OpKind::Write);
    let rendered = plot::scatter_log(
        "Figure 9: PRISM write sizes vs execution time, version C (log bytes)",
        &tl,
        70,
        14,
    );
    // Checkpoint visibility: the statistics bursts (stats_write-sized
    // events) must cluster into exactly `checkpoints` bursts.
    let cfg = config(PrismVersion::C, scale);
    let expected = cfg.checkpoints() as usize;
    let stats_points: Vec<(Time, u64)> = tl
        .points()
        .iter()
        .copied()
        .filter(|&(_, v)| v == cfg.knobs.stats_write)
        .collect();
    let bursts = Timeline::new(stats_points)
        .burst_count(cfg.knobs.step_compute * u64::from(cfg.checkpoint_every / 2).max(1));
    let checks = vec![
        ShapeCheck::new(
            "the checkpoints are clearly visible (paper: five)",
            bursts == expected,
            format!("found {bursts} bursts, expected {expected}"),
        ),
        ShapeCheck::new(
            "small measurement writes continue throughout the run",
            tl.span().as_secs_f64() > 0.5 * rc.exec_time.as_secs_f64(),
            format!(
                "write span {:.0}s of {:.0}s execution",
                tl.span().as_secs_f64(),
                rc.exec_time.as_secs_f64()
            ),
        ),
    ];
    ExperimentOutput {
        experiment: Experiment::PrismFig9,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_is_static_and_passes() {
        let out = table4();
        assert!(out.all_pass(), "{:?}", out.failures());
        assert!(out.rendered.contains("M_GLOBAL"));
    }

    #[test]
    fn smoke_experiments_run() {
        for out in [
            fig6(Scale::Smoke),
            table5(Scale::Smoke),
            fig7(Scale::Smoke),
            fig8(Scale::Smoke),
            fig9(Scale::Smoke),
        ] {
            assert!(!out.rendered.is_empty());
            assert!(!out.checks.is_empty());
        }
    }

    #[test]
    fn run_cache_memoizes() {
        let a = run_version(PrismVersion::B, Scale::Smoke);
        let b = run_version(PrismVersion::B, Scale::Smoke);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
