//! The experiment registry: every table and figure of the paper, plus
//! the §7 design-principle ablations, as runnable experiments.
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | [`Experiment::EscatTable1`] | Table 1 — ESCAT node activity & modes |
//! | [`Experiment::EscatFig1`] | Fig. 1 — execution time of six ESCAT progressions |
//! | [`Experiment::EscatTable2`] | Table 2 — ESCAT % of I/O time by operation |
//! | [`Experiment::EscatFig2`] | Fig. 2 — ESCAT request-size CDFs |
//! | [`Experiment::EscatFig3`] | Fig. 3 — ESCAT read-size timelines (A, C) |
//! | [`Experiment::EscatFig4`] | Fig. 4 — ESCAT write-size timelines (A, C) |
//! | [`Experiment::EscatFig5`] | Fig. 5 — ESCAT seek-duration timelines (B, C) |
//! | [`Experiment::EscatTable3`] | Table 3 — ESCAT % of execution time (+ carbon monoxide) |
//! | [`Experiment::PrismTable4`] | Table 4 — PRISM node activity & modes |
//! | [`Experiment::PrismFig6`] | Fig. 6 — PRISM execution times |
//! | [`Experiment::PrismTable5`] | Table 5 — PRISM % of I/O time by operation |
//! | [`Experiment::PrismFig7`] | Fig. 7 — PRISM request-size CDFs |
//! | [`Experiment::PrismFig8`] | Fig. 8 — PRISM read-size timelines (A, B, C) |
//! | [`Experiment::PrismFig9`] | Fig. 9 — PRISM write-size timeline (C) |
//! | [`Experiment::AblationAggregation`] | §7 — request aggregation |
//! | [`Experiment::AblationPrefetch`] | §7 — prefetching |
//! | [`Experiment::AblationWriteBehind`] | §7 — write-behind |
//! | [`Experiment::AblationCaching`] | §5.4 — client buffering on/off |
//! | [`Experiment::AblationAdaptive`] | §5.4 — adaptive (PPFS-style) policy selection |
//! | [`Experiment::AblationNoRestructuring`] | §4.4/§7 — the central counterfactual: FS policies instead of code restructuring |
//! | [`Experiment::ResilienceEscat`] | Fault injection — ESCAT under each fault class |
//! | [`Experiment::ResiliencePrism`] | Fault injection — PRISM under each fault class |
//! | [`Experiment::RecoveryEscat`] | Checkpoint/restart — ESCAT C time-to-solution under a compute-node crash |
//! | [`Experiment::RecoveryPrism`] | Checkpoint/restart — PRISM B time-to-solution under a compute-node crash |
//! | [`Experiment::ContentionMix`] | Multi-tenant — I/O-bound vs compute-bound slowdown on shared I/O nodes |
//! | [`Experiment::BackfillVsFcfs`] | Multi-tenant — EASY backfill against FCFS on a blocker stream |
//! | [`Experiment::BackendEscat`] | Evolution — ESCAT B/C across pfs, object-store and burst-buffer tiers |
//! | [`Experiment::BackendPrism`] | Evolution — PRISM A/C across pfs, object-store and burst-buffer tiers |
//! | [`Experiment::FaultyObject`] | Robustness — object tier under metadata-shard outages and degraded service |
//! | [`Experiment::FaultyBurst`] | Robustness — burst tier under drain stalls and a burst-node crash |
//! | [`Experiment::StreamPrism`] | Streaming — PRISM checkpoint cadence over bounded staging queues |
//! | [`Experiment::StreamVsFile`] | Streaming — in-transit pipeline vs the checkpoint-file hand-off |

pub mod ablation;
pub mod backend;
pub mod comparison;
pub mod contention;
pub mod escat;
pub mod prism;
pub mod recovery;
pub mod resilience;
pub mod shape;
pub mod stream;

use serde::{Deserialize, Serialize};
pub use shape::ShapeCheck;
use std::fmt;

/// Every reproducible artifact of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Experiment {
    EscatTable1,
    EscatFig1,
    EscatTable2,
    EscatFig2,
    EscatFig3,
    EscatFig4,
    EscatFig5,
    EscatTable3,
    PrismTable4,
    PrismFig6,
    PrismTable5,
    PrismFig7,
    PrismFig8,
    PrismFig9,
    AblationAggregation,
    AblationPrefetch,
    AblationWriteBehind,
    AblationCaching,
    AblationAdaptive,
    AblationNoRestructuring,
    Section6Comparison,
    ResilienceEscat,
    ResiliencePrism,
    RecoveryEscat,
    RecoveryPrism,
    ContentionMix,
    BackfillVsFcfs,
    BackendEscat,
    BackendPrism,
    FaultyObject,
    FaultyBurst,
    StreamPrism,
    StreamVsFile,
}

impl Experiment {
    /// All experiments in the paper's presentation order.
    pub fn all() -> Vec<Experiment> {
        use Experiment::*;
        vec![
            EscatTable1,
            EscatFig1,
            EscatTable2,
            EscatFig2,
            EscatFig3,
            EscatFig4,
            EscatFig5,
            EscatTable3,
            PrismTable4,
            PrismFig6,
            PrismTable5,
            PrismFig7,
            PrismFig8,
            PrismFig9,
            AblationAggregation,
            AblationPrefetch,
            AblationWriteBehind,
            AblationCaching,
            AblationAdaptive,
            AblationNoRestructuring,
            Section6Comparison,
            ResilienceEscat,
            ResiliencePrism,
            RecoveryEscat,
            RecoveryPrism,
            ContentionMix,
            BackfillVsFcfs,
            BackendEscat,
            BackendPrism,
            FaultyObject,
            FaultyBurst,
            StreamPrism,
            StreamVsFile,
        ]
    }

    /// Stable identifier (bench names, CLI arguments).
    pub fn id(self) -> &'static str {
        use Experiment::*;
        match self {
            EscatTable1 => "escat-table1",
            EscatFig1 => "escat-fig1",
            EscatTable2 => "escat-table2",
            EscatFig2 => "escat-fig2",
            EscatFig3 => "escat-fig3",
            EscatFig4 => "escat-fig4",
            EscatFig5 => "escat-fig5",
            EscatTable3 => "escat-table3",
            PrismTable4 => "prism-table4",
            PrismFig6 => "prism-fig6",
            PrismTable5 => "prism-table5",
            PrismFig7 => "prism-fig7",
            PrismFig8 => "prism-fig8",
            PrismFig9 => "prism-fig9",
            AblationAggregation => "ablation-aggregation",
            AblationPrefetch => "ablation-prefetch",
            AblationWriteBehind => "ablation-writebehind",
            AblationCaching => "ablation-caching",
            AblationAdaptive => "ablation-adaptive",
            AblationNoRestructuring => "ablation-no-restructuring",
            Section6Comparison => "section6-comparison",
            ResilienceEscat => "resilience-escat",
            ResiliencePrism => "resilience-prism",
            RecoveryEscat => "recovery-escat",
            RecoveryPrism => "recovery-prism",
            ContentionMix => "contention-mix",
            BackfillVsFcfs => "backfill-vs-fcfs",
            BackendEscat => "backend-escat",
            BackendPrism => "backend-prism",
            FaultyObject => "faulty-object",
            FaultyBurst => "faulty-burst",
            StreamPrism => "stream-prism",
            StreamVsFile => "stream-vs-file",
        }
    }

    /// Parse an identifier.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all().into_iter().find(|e| e.id() == id)
    }

    /// Human title.
    pub fn title(self) -> &'static str {
        use Experiment::*;
        match self {
            EscatTable1 => "Table 1: Node activity and file access modes (ESCAT)",
            EscatFig1 => "Figure 1: Execution time for six ESCAT code progressions",
            EscatTable2 => "Table 2: Aggregate I/O performance summaries (ESCAT)",
            EscatFig2 => "Figure 2: CDF of read/write request sizes and data transfers (ESCAT)",
            EscatFig3 => "Figure 3: File read sizes for versions A and C (ESCAT)",
            EscatFig4 => "Figure 4: File write sizes for versions A and C (ESCAT)",
            EscatFig5 => "Figure 5: Seek operation durations for versions B and C (ESCAT)",
            EscatTable3 => "Table 3: Percentage of total execution time by I/O operation (ESCAT)",
            PrismTable4 => "Table 4: Node activity and file access modes (PRISM)",
            PrismFig6 => "Figure 6: Execution time for three PRISM code versions",
            PrismTable5 => "Table 5: Aggregate I/O performance summaries (PRISM)",
            PrismFig7 => "Figure 7: CDF of read and write request sizes and data transfers (PRISM)",
            PrismFig8 => "Figure 8: File read sizes for three versions of PRISM",
            PrismFig9 => "Figure 9: File write sizes for version C of PRISM",
            AblationAggregation => "Ablation (§7): client request aggregation",
            AblationPrefetch => "Ablation (§7): prefetching",
            AblationWriteBehind => "Ablation (§7): write-behind",
            AblationCaching => "Ablation (§5.4): client buffering on/off",
            AblationAdaptive => "Ablation (§5.4): adaptive (PPFS-style) policy selection",
            AblationNoRestructuring => {
                "Counterfactual (§4.4/§7): file-system policies instead of code restructuring"
            }
            Section6Comparison => {
                "Section 6: application comparison across the three I/O dimensions"
            }
            ResilienceEscat => "Resilience: ESCAT C under each fault class",
            ResiliencePrism => "Resilience: PRISM B under each fault class",
            RecoveryEscat => "Recovery: ESCAT C time-to-solution under a compute-node crash",
            RecoveryPrism => "Recovery: PRISM B time-to-solution under a compute-node crash",
            ContentionMix => "Contention: I/O-bound vs compute-bound slowdown on shared I/O nodes",
            BackfillVsFcfs => "Scheduling: EASY backfill against FCFS on a blocker stream",
            BackendEscat => "Evolution: ESCAT across pfs, object-store and burst-buffer tiers",
            BackendPrism => "Evolution: PRISM across pfs, object-store and burst-buffer tiers",
            FaultyObject => {
                "Robustness: object tier under metadata-shard outages and degraded service"
            }
            FaultyBurst => "Robustness: burst tier under drain stalls and a burst-node crash",
            StreamPrism => "Streaming: PRISM checkpoint cadence over bounded staging queues",
            StreamVsFile => "Streaming: in-transit pipeline vs the checkpoint-file hand-off",
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Scale at which to run: `Full` reproduces the paper's problem sizes;
/// `Smoke` shrinks everything for fast CI runs while preserving the
/// version structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-scale (128/256/64 nodes, full volumes).
    Full,
    /// Scaled-down for tests.
    Smoke,
}

/// A completed experiment: the rendered artifact plus the shape checks
/// comparing it against the paper.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// Rendered table / ASCII figure.
    pub rendered: String,
    /// Shape assertions against the paper's published values.
    pub checks: Vec<ShapeCheck>,
}

impl ExperimentOutput {
    /// `true` iff every shape check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Failed checks.
    pub fn failures(&self) -> Vec<&ShapeCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

/// Drop every memoized workload run.
///
/// Experiments share simulated runs through per-application memoization
/// caches so that, say, the four ESCAT figures do not re-simulate the
/// same six progressions. Benchmarks that want to time a *cold* pass of
/// the registry call this between iterations; ordinary callers never
/// need it.
pub fn clear_run_caches() {
    escat::clear_cache();
    prism::clear_cache();
}

/// Run one experiment at the given scale.
pub fn run_experiment(experiment: Experiment, scale: Scale) -> ExperimentOutput {
    use Experiment::*;
    match experiment {
        EscatTable1 => escat::table1(),
        EscatFig1 => escat::fig1(scale),
        EscatTable2 => escat::table2(scale),
        EscatFig2 => escat::fig2(scale),
        EscatFig3 => escat::fig3(scale),
        EscatFig4 => escat::fig4(scale),
        EscatFig5 => escat::fig5(scale),
        EscatTable3 => escat::table3(scale),
        PrismTable4 => prism::table4(),
        PrismFig6 => prism::fig6(scale),
        PrismTable5 => prism::table5(scale),
        PrismFig7 => prism::fig7(scale),
        PrismFig8 => prism::fig8(scale),
        PrismFig9 => prism::fig9(scale),
        AblationAggregation => ablation::aggregation(scale),
        AblationPrefetch => ablation::prefetch(scale),
        AblationWriteBehind => ablation::write_behind(scale),
        AblationCaching => ablation::caching(scale),
        AblationAdaptive => ablation::adaptive(scale),
        AblationNoRestructuring => ablation::no_restructuring(scale),
        Section6Comparison => comparison::section6(scale),
        ResilienceEscat => resilience::escat(scale),
        ResiliencePrism => resilience::prism(scale),
        RecoveryEscat => recovery::escat(scale),
        RecoveryPrism => recovery::prism(scale),
        ContentionMix => contention::contention_mix(scale),
        BackfillVsFcfs => contention::backfill_vs_fcfs(scale),
        BackendEscat => backend::escat(scale),
        BackendPrism => backend::prism(scale),
        FaultyObject => backend::faulty_object(scale),
        FaultyBurst => backend::faulty_burst(scale),
        StreamPrism => stream::stream_prism(scale),
        StreamVsFile => stream::stream_vs_file(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        assert_eq!(Experiment::from_id("nope"), None);
    }

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = Experiment::all().iter().map(|e| e.id()).collect();
        // 5 tables + 9 figures + 6 ablations/counterfactuals + the
        // §6 comparison + 2 resilience + 2 recovery + 2 multi-tenant
        // scheduling experiments + 2 cross-tier backend comparisons
        // + 2 tier-fault robustness experiments + 2 streaming
        // pipeline experiments.
        assert_eq!(ids.len(), 33);
        for artifact in [
            "escat-table1",
            "escat-table2",
            "escat-table3",
            "prism-table4",
            "prism-table5",
            "escat-fig1",
            "escat-fig2",
            "escat-fig3",
            "escat-fig4",
            "escat-fig5",
            "prism-fig6",
            "prism-fig7",
            "prism-fig8",
            "prism-fig9",
        ] {
            assert!(ids.contains(&artifact), "missing {artifact}");
        }
    }

    #[test]
    fn titles_are_distinct() {
        let mut titles: Vec<&str> = Experiment::all().iter().map(|e| e.title()).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), Experiment::all().len());
    }
}
