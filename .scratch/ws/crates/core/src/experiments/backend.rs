//! Cross-tier backend comparisons: the same 1996 request streams
//! replayed against three storage tiers.
//!
//! The paper's pathologies — M_UNIX token serialization, gopen
//! rendezvous stalls, small unaligned requests — were measured on one
//! file system. Replaying the identical workload programs through the
//! [`StorageBackend`](sioscope_pfs::StorageBackend) seam answers the
//! evolutionary question directly: which pathologies are artifacts of
//! the 1996 tier (they vanish on the object store, which has no
//! shared-pointer modes), which are intrinsic to the request stream
//! (per-request metadata/latency overhead survives every tier), and
//! which *invert* (striping parallelism becomes single-target
//! serialization when a file maps wholly to one object).

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::simulator::{run_backend, RunResult, SimOptions};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_pfs::{
    BackendConfig, BackendKind, BurstBufferConfig, ObjectStoreConfig, OpKind, PfsConfig,
};
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};
use std::fmt::Write as _;

fn tier_config(kind: BackendKind, workload: &Workload) -> BackendConfig {
    match kind {
        BackendKind::Pfs => BackendConfig::Pfs(PfsConfig::caltech(workload.nodes, workload.os)),
        BackendKind::Object => BackendConfig::Object(ObjectStoreConfig::modern(workload.nodes)),
        BackendKind::Burst => BackendConfig::Burst(BurstBufferConfig::over(PfsConfig::caltech(
            workload.nodes,
            workload.os,
        ))),
    }
}

fn run_tier(kind: BackendKind, workload: &Workload) -> RunResult {
    run_backend(
        workload,
        &tier_config(kind, workload),
        SimOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{} on {kind}: {e}", workload.name))
}

fn cross_tier(experiment: Experiment, title: &str, workloads: Vec<Workload>) -> ExperimentOutput {
    let mut rendered = String::new();
    let mut checks = Vec::new();
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  {:<14}{:<8}{:>12}{:>12}{:>10}  tier activity",
        "workload", "tier", "exec time", "total I/O", "events"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(86));

    for w in &workloads {
        let mut per_tier = Vec::new();
        for kind in BackendKind::all() {
            let r = run_tier(kind, w);
            let s = r.backend_stats;
            let activity = match kind {
                BackendKind::Pfs => "striped PFS (measured path)".to_string(),
                BackendKind::Object => format!("{} PUTs, {} GETs", s.puts, s.gets),
                BackendKind::Burst => format!(
                    "{} B logged, drained by {}",
                    s.bytes_logged, s.drain_complete
                ),
            };
            let _ = writeln!(
                rendered,
                "  {:<14}{:<8}{:>11.2}s{:>11.2}s{:>10}  {}",
                format!("{} {}", w.name, w.version),
                kind.id(),
                r.exec_time.as_secs_f64(),
                r.total_io_time().as_secs_f64(),
                r.events,
                activity
            );
            per_tier.push((kind, r));
        }

        let label = format!("{} {}", w.name, w.version);
        let pfs = &per_tier[0].1;
        let object = &per_tier[1].1;
        let burst = &per_tier[2].1;

        // Same request stream on every tier: the trace has one record
        // per completed client call regardless of how the tier served
        // it.
        let lens: Vec<usize> = per_tier.iter().map(|(_, r)| r.trace.len()).collect();
        checks.push(ShapeCheck::new(
            format!("{label}: identical request stream across tiers"),
            lens.windows(2).all(|p| p[0] == p[1]),
            format!("trace lengths pfs/object/burst = {lens:?}"),
        ));

        // Every data op the object tier saw is accounted as a PUT or
        // GET — the flat namespace serves the whole stream.
        let data_ops = object
            .trace
            .events()
            .iter()
            .filter(|e| e.kind == OpKind::Read || e.kind == OpKind::Write)
            .count() as u64;
        let served = object.backend_stats.puts + object.backend_stats.gets;
        checks.push(ShapeCheck::new(
            format!("{label}: object tier serves all data ops as PUT/GET"),
            served == data_ops,
            format!("{served} PUT+GET vs {data_ops} traced data ops"),
        ));

        // The gopen rendezvous pathology vanishes off the PFS: neither
        // modern tier has collective open semantics.
        checks.push(ShapeCheck::new(
            format!("{label}: no collective stalls survive on modern tiers"),
            object.resilience.is_quiet() && burst.backend_stats.conserves_bytes(),
            "object tier quiet; burst accounting conserved".to_string(),
        ));

        // Absorbing every write at NVMe speed must beat 1996 disks.
        checks.push(ShapeCheck::greater(
            format!("{label}: burst absorb is faster than the striped PFS"),
            "pfs exec (s)",
            pfs.exec_time.as_secs_f64(),
            "burst exec (s)",
            burst.exec_time.as_secs_f64(),
        ));

        // The drain conserves every logged byte and finishes.
        let bs = burst.backend_stats;
        checks.push(ShapeCheck::new(
            format!("{label}: burst drain retires the whole log"),
            bs.conserves_bytes() && bs.bytes_resident == 0 && bs.bytes_drained == bs.bytes_logged,
            format!(
                "{} logged, {} drained, {} resident",
                bs.bytes_logged, bs.bytes_drained, bs.bytes_resident
            ),
        ));
    }

    ExperimentOutput {
        experiment,
        rendered,
        checks,
    }
}

/// ESCAT versions B and C (the tuned M_RECORD progression and the
/// final restructured code) across the three tiers.
pub fn escat(scale: Scale) -> ExperimentOutput {
    let workloads = [EscatVersion::B, EscatVersion::C]
        .into_iter()
        .map(|v| match scale {
            Scale::Smoke => EscatConfig::tiny(v).build(),
            Scale::Full => EscatConfig::ethylene(v).build(),
        })
        .collect();
    cross_tier(
        Experiment::BackendEscat,
        "Backend comparison: ESCAT B and C across pfs / object / burst",
        workloads,
    )
}

/// PRISM versions A and C (the M_UNIX original and the restructured
/// code) across the three tiers.
pub fn prism(scale: Scale) -> ExperimentOutput {
    let workloads = [PrismVersion::A, PrismVersion::C]
        .into_iter()
        .map(|v| match scale {
            Scale::Smoke => PrismConfig::tiny(v).build(),
            Scale::Full => PrismConfig::test_problem(v).build(),
        })
        .collect();
    cross_tier(
        Experiment::BackendPrism,
        "Backend comparison: PRISM A and C across pfs / object / burst",
        workloads,
    )
}

/// Shared scaffolding for the two tier-fault experiments: run the
/// workload fault-free, engaged-but-empty, and with `faults`, render
/// the comparison, and assert the invariants every faulted tier must
/// hold (hook bit-neutrality, replay determinism, never-faster).
/// Tier-specific checks are appended by the caller.
#[allow(clippy::type_complexity)]
fn faulted_tier(
    experiment: Experiment,
    title: &str,
    workload: &Workload,
    clean: RunResult,
    build: &dyn Fn(FaultSchedule) -> BackendConfig,
    faults: FaultSchedule,
) -> (ExperimentOutput, RunResult) {
    let engaged = run_backend(
        workload,
        &build(FaultSchedule::engaged_empty()),
        SimOptions::default(),
    )
    .expect("engaged-empty run");
    let faulted =
        run_backend(workload, &build(faults.clone()), SimOptions::default()).expect("faulted run");
    let replay =
        run_backend(workload, &build(faults), SimOptions::default()).expect("faulted replay");

    let mut rendered = String::new();
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  {:<16}{:>12}{:>9}{:>14}{:>12}{:>12}",
        "run", "exec time", "events", "transitions", "resilience", "bytes lost"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(75));
    for (label, r) in [("fault-free", &clean), ("faulted", &faulted)] {
        let _ = writeln!(
            rendered,
            "  {:<16}{:>11.3}s{:>9}{:>14}{:>12}{:>12}",
            label,
            r.exec_time.as_secs_f64(),
            r.events,
            r.fault_transitions,
            r.resilience.total_actions(),
            r.backend_stats.bytes_lost,
        );
    }

    let checks = vec![
        ShapeCheck::new(
            "engaged-but-empty schedule is bit-neutral".to_string(),
            engaged.exec_time == clean.exec_time
                && engaged.events == clean.events
                && engaged.trace.len() == clean.trace.len(),
            format!(
                "exec {} vs {}, events {} vs {}",
                engaged.exec_time, clean.exec_time, engaged.events, clean.events
            ),
        ),
        ShapeCheck::new(
            "same schedule replays bit-identically".to_string(),
            replay.exec_time == faulted.exec_time
                && replay.events == faulted.events
                && replay.trace.len() == faulted.trace.len()
                && replay.resilience == faulted.resilience,
            format!("exec {} vs {}", replay.exec_time, faulted.exec_time),
        ),
        ShapeCheck::new(
            "faults engaged: transitions recorded".to_string(),
            faulted.fault_transitions > 0,
            format!("{} transitions", faulted.fault_transitions),
        ),
        ShapeCheck::new(
            "faults never speed the run up".to_string(),
            faulted.exec_time >= clean.exec_time,
            format!("faulted {} vs clean {}", faulted.exec_time, clean.exec_time),
        ),
    ];
    (
        ExperimentOutput {
            experiment,
            rendered,
            checks,
        },
        faulted,
    )
}

/// Object tier under a metadata-shard outage spanning the whole run
/// plus a degraded-service window over its first half. The failover
/// ladder (timeout → bounded retries → reroute to the replica shard)
/// must fire and the run must slow down, but the request stream is
/// served in full.
pub fn faulty_object(scale: Scale) -> ExperimentOutput {
    let workload = match scale {
        Scale::Smoke => EscatConfig::tiny(EscatVersion::B).build(),
        Scale::Full => EscatConfig::ethylene(EscatVersion::B).build(),
    };
    let build = |faults: FaultSchedule| {
        let mut obj = ObjectStoreConfig::modern(workload.nodes);
        obj.faults = faults;
        BackendConfig::Object(obj)
    };
    let clean = run_backend(
        &workload,
        &build(FaultSchedule::empty()),
        SimOptions::default(),
    )
    .expect("fault-free object run");
    let horizon = clean.exec_time;

    // Shard 0 dark for the entire run (and past its end, so the
    // ladder can never wait the outage out) — every shard-0 metadata
    // op must fail over. The degraded window slows every transfer in
    // the first half.
    let mut faults = FaultSchedule::empty();
    faults.push(
        Time::ZERO,
        FaultKind::MetadataShardOutage {
            shard: 0,
            duration: horizon.saturating_add(horizon).max(Time::from_secs(1)),
        },
    );
    faults.push(
        Time::ZERO,
        FaultKind::DegradedService {
            duration: horizon.scale(0.5).max(Time::from_millis(1)),
            factor: 2.0,
        },
    );

    let (mut out, faulted) = faulted_tier(
        Experiment::FaultyObject,
        "Object tier failover: shard-0 outage + degraded-service window",
        &workload,
        clean,
        &build,
        faults,
    );
    let rz = faulted.resilience;
    out.checks.push(ShapeCheck::new(
        "dark shard trips the failover ladder".to_string(),
        rz.timeouts > 0 && rz.reroutes > 0,
        format!(
            "{} timeouts, {} retries, {} reroutes, {} aborts",
            rz.timeouts, rz.retries, rz.reroutes, rz.aborts
        ),
    ));
    let s = faulted.backend_stats;
    out.checks.push(ShapeCheck::new(
        "request stream served in full despite the outage".to_string(),
        s.puts + s.gets
            == faulted
                .trace
                .events()
                .iter()
                .filter(|e| e.kind == OpKind::Read || e.kind == OpKind::Write)
                .count() as u64,
        format!("{} PUT+GET", s.puts + s.gets),
    ));
    let _ = writeln!(
        out.rendered,
        "  ladder: {} timeouts, {} retries, {} reroutes, {} aborts",
        rz.timeouts, rz.retries, rz.reroutes, rz.aborts
    );
    out
}

/// Burst tier under a drain stall and a burst-node crash timed to the
/// completion of the largest logged write, so bytes are resident —
/// and lost — at the crash instant. The byte ledger must stay
/// conserved with the loss on the books.
pub fn faulty_burst(scale: Scale) -> ExperimentOutput {
    let workload = match scale {
        Scale::Smoke => PrismConfig::tiny(PrismVersion::C).build(),
        Scale::Full => PrismConfig::test_problem(PrismVersion::C).build(),
    };
    let build = |faults: FaultSchedule| {
        let mut burst = BurstBufferConfig::over(PfsConfig::caltech(workload.nodes, workload.os));
        burst.faults = faults;
        BackendConfig::Burst(burst)
    };
    let clean = run_backend(
        &workload,
        &build(FaultSchedule::empty()),
        SimOptions::default(),
    )
    .expect("fault-free burst run");
    let horizon = clean.exec_time;

    // Crash exactly when the largest write retires from the log: its
    // drain to the inner PFS cannot have finished (the drain channel
    // is slower than the log), so its bytes are resident and lost.
    // The stall beforehand keeps the backlog deep without touching
    // foreground timing.
    let crash_at = clean
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == OpKind::Write && e.bytes > 0)
        .max_by_key(|e| e.bytes)
        .map(|e| e.end())
        .expect("workload logs at least one write");
    let mut faults = FaultSchedule::empty();
    faults.push(
        horizon.scale(0.1),
        FaultKind::DrainStall {
            duration: horizon.scale(0.2).max(Time::from_millis(1)),
        },
    );
    faults.push(
        crash_at,
        FaultKind::BurstNodeCrash {
            repair: horizon.scale(0.25).max(Time::from_millis(1)),
        },
    );

    let (mut out, faulted) = faulted_tier(
        Experiment::FaultyBurst,
        "Burst tier failover: drain stall + burst-node crash at peak residency",
        &workload,
        clean,
        &build,
        faults,
    );
    let s = faulted.backend_stats;
    out.checks.push(ShapeCheck::new(
        "crash at peak residency loses bytes".to_string(),
        s.bytes_lost > 0,
        format!("{} bytes lost", s.bytes_lost),
    ));
    out.checks.push(ShapeCheck::new(
        "byte ledger conserved with the loss on the books".to_string(),
        s.conserves_bytes() && s.bytes_resident == 0,
        format!(
            "{} logged = {} drained + {} resident + {} lost",
            s.bytes_logged, s.bytes_drained, s.bytes_resident, s.bytes_lost
        ),
    ));
    let _ = writeln!(
        out.rendered,
        "  ledger: {} logged = {} drained + {} lost ({} writethroughs)",
        s.bytes_logged, s.bytes_drained, s.bytes_lost, faulted.resilience.writethroughs
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escat_cross_tier_checks_pass_at_smoke() {
        let out = escat(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("object"));
        assert!(out.rendered.contains("burst"));
    }

    #[test]
    fn prism_cross_tier_checks_pass_at_smoke() {
        let out = prism(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
    }

    #[test]
    fn faulty_object_checks_pass_at_smoke() {
        let out = faulty_object(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("reroutes"));
    }

    #[test]
    fn faulty_burst_checks_pass_at_smoke() {
        let out = faulty_burst(Scale::Smoke);
        assert!(out.all_pass(), "{}\n{:#?}", out.rendered, out.failures());
        assert!(out.rendered.contains("lost"));
    }
}
