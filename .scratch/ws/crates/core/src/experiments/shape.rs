//! Shape checks: assertions that the reproduction preserves the
//! paper's qualitative result, recorded with enough context to print.

use serde::{Deserialize, Serialize};

/// One qualitative assertion against the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// What is being checked, e.g. "version B is dominated by seeks".
    pub name: String,
    /// Did the reproduction satisfy it?
    pub pass: bool,
    /// Human-readable evidence (measured vs. paper).
    pub detail: String,
}

impl ShapeCheck {
    /// Build a check from a predicate and evidence string.
    pub fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        ShapeCheck {
            name: name.into(),
            pass,
            detail: detail.into(),
        }
    }

    /// Check that `measured` is within `[lo, hi]`.
    pub fn in_range(name: impl Into<String>, measured: f64, lo: f64, hi: f64) -> Self {
        ShapeCheck {
            name: name.into(),
            pass: measured >= lo && measured <= hi,
            detail: format!("measured {measured:.3}, expected [{lo:.3}, {hi:.3}]"),
        }
    }

    /// Check that `a > b` (strict ordering of two measured values).
    pub fn greater(name: impl Into<String>, a_label: &str, a: f64, b_label: &str, b: f64) -> Self {
        ShapeCheck {
            name: name.into(),
            pass: a > b,
            detail: format!("{a_label} = {a:.3} vs {b_label} = {b:.3}"),
        }
    }
}

/// Render a check list as text.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(if c.pass { "  [pass] " } else { "  [FAIL] " });
        out.push_str(&c.name);
        out.push_str(" — ");
        out.push_str(&c.detail);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = ShapeCheck::in_range("x", 5.0, 1.0, 10.0);
        assert!(c.pass);
        let c = ShapeCheck::in_range("x", 50.0, 1.0, 10.0);
        assert!(!c.pass);
        let c = ShapeCheck::greater("order", "a", 2.0, "b", 1.0);
        assert!(c.pass);
        assert!(c.detail.contains("a = 2.000"));
    }

    #[test]
    fn rendering_marks_failures() {
        let checks = vec![
            ShapeCheck::new("good", true, "ok"),
            ShapeCheck::new("bad", false, "oops"),
        ];
        let text = render_checks(&checks);
        assert!(text.contains("[pass] good"));
        assert!(text.contains("[FAIL] bad"));
    }
}
