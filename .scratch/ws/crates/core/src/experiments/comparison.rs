//! §6 — Application Comparisons.
//!
//! The paper's synthesis section compares the two codes' *initial*
//! (§6.1) and *optimized* (§6.2) access patterns along three
//! dimensions: request size, I/O parallelism, and access modes. This
//! experiment measures all three for every version of both codes and
//! checks the section's claims:
//!
//! * §6.1: in the initial versions "at least 98 percent of all reads
//!   were small ... although the vast majority of data is read via a
//!   small number of large requests", and "both codes relied on a
//!   single node to coordinate parallel read and write operations";
//! * §6.2: the optimized versions read mostly via large structured
//!   requests, all nodes participate, and the dominant modes shift
//!   from M_UNIX to the collective/asynchronous modes.

use crate::experiments::{escat, prism, Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::simulator::RunResult;
use sioscope_analysis::{Cdf, ModeUsage, NodeBalance};
use sioscope_pfs::{IoMode, OpKind};
use sioscope_sim::Pid;
use sioscope_workloads::{EscatDataset, EscatVersion, PrismVersion};
use std::fmt::Write as _;

struct Dimensions {
    small_read_fraction: f64,
    large_read_data_fraction: f64,
    node0_write_share: f64,
    dominant_mode_by_bytes: Option<&'static str>,
    modes_used: usize,
}

fn measure(r: &RunResult) -> Dimensions {
    let index = r.trace.index();
    let reads = Cdf::of_kind(index, OpKind::Read);
    let writes = NodeBalance::of_kind(index, OpKind::Write);
    let modes = ModeUsage::from_index(index);
    Dimensions {
        small_read_fraction: reads.fraction_leq(2048),
        large_read_data_fraction: 1.0 - reads.weight_fraction_leq(100 * 1024),
        node0_write_share: writes.share(Pid(0)),
        dominant_mode_by_bytes: modes.dominant_by_bytes(),
        modes_used: modes.used_modes().len(),
    }
}

fn render_row(out: &mut String, label: &str, d: &Dimensions) {
    let _ = writeln!(
        out,
        "{:<10}{:>13.1}%{:>15.1}%{:>15.0}%{:>12}{:>8}",
        label,
        100.0 * d.small_read_fraction,
        100.0 * d.large_read_data_fraction,
        100.0 * d.node0_write_share,
        d.dominant_mode_by_bytes.unwrap_or("-"),
        d.modes_used,
    );
}

/// Run the §6 comparison.
pub fn section6(scale: Scale) -> ExperimentOutput {
    let mut rendered =
        String::from("Section 6: application comparison across the three I/O dimensions\n");
    let _ = writeln!(
        rendered,
        "{:<10}{:>14}{:>16}{:>16}{:>12}{:>8}",
        "version", "small reads", "data via large", "node-0 writes", "top mode", "modes"
    );
    let _ = writeln!(rendered, "{}", "-".repeat(76));

    let mut dims = Vec::new();
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        let r = escat::run_version(v, EscatDataset::Ethylene, scale);
        let d = measure(&r);
        render_row(&mut rendered, &format!("ESCAT-{}", v.label()), &d);
        dims.push((format!("ESCAT-{}", v.label()), d));
    }
    for v in PrismVersion::all() {
        let r = prism::run_version(v, scale);
        let d = measure(&r);
        render_row(&mut rendered, &format!("PRISM-{}", v.label()), &d);
        dims.push((format!("PRISM-{}", v.label()), d));
    }

    let get =
        |name: &str| -> &Dimensions { &dims.iter().find(|(n, _)| n == name).expect("measured").1 };
    let escat_a = get("ESCAT-A");
    let escat_c = get("ESCAT-C");
    let prism_a = get("PRISM-A");
    let prism_c = get("PRISM-C");

    let checks = vec![
        ShapeCheck::new(
            "§6.1: initial versions read almost entirely in small requests",
            escat_a.small_read_fraction > 0.9 && prism_a.small_read_fraction > 0.8,
            format!(
                "ESCAT-A {:.1}%, PRISM-A {:.1}%",
                100.0 * escat_a.small_read_fraction,
                100.0 * prism_a.small_read_fraction
            ),
        ),
        ShapeCheck::new(
            "§6.1: both initial codes funnel writes through node zero",
            escat_a.node0_write_share > 0.95 && prism_a.node0_write_share > 0.95,
            format!(
                "ESCAT-A {:.0}%, PRISM-A {:.0}%",
                100.0 * escat_a.node0_write_share,
                100.0 * prism_a.node0_write_share
            ),
        ),
        ShapeCheck::new(
            "§6.1: only standard UNIX I/O in the initial versions",
            escat_a.dominant_mode_by_bytes == Some("M_UNIX")
                && prism_a.dominant_mode_by_bytes == Some("M_UNIX")
                && escat_a.modes_used == 1
                && prism_a.modes_used == 1,
            format!(
                "ESCAT-A: {} mode(s), PRISM-A: {} mode(s)",
                escat_a.modes_used, prism_a.modes_used
            ),
        ),
        ShapeCheck::new(
            // ESCAT: "98 percent of data via 128 KB reads"; PRISM:
            // "a few large requests (greater 150KB) constitute the
            // majority of I/O data volume" (§5.2).
            "§6.2: optimized versions move data via large structured requests",
            escat_c.large_read_data_fraction > 0.9 && prism_c.large_read_data_fraction > 0.55,
            format!(
                "ESCAT-C {:.1}%, PRISM-C {:.1}%",
                100.0 * escat_c.large_read_data_fraction,
                100.0 * prism_c.large_read_data_fraction
            ),
        ),
        ShapeCheck::new(
            "§6.2: writes leave node zero in the optimized versions",
            escat_c.node0_write_share < 0.2 && prism_c.node0_write_share < 0.2,
            format!(
                "ESCAT-C {:.0}%, PRISM-C {:.0}%",
                100.0 * escat_c.node0_write_share,
                100.0 * prism_c.node0_write_share
            ),
        ),
        ShapeCheck::new(
            "§6.2: the structured modes carry the optimized data",
            matches!(
                escat_c.dominant_mode_by_bytes,
                Some(m) if m == IoMode::MRecord.name() || m == IoMode::MAsync.name()
            ) && matches!(
                prism_c.dominant_mode_by_bytes,
                Some(m) if m != IoMode::MUnix.name()
            ),
            format!(
                "ESCAT-C: {}, PRISM-C: {}",
                escat_c.dominant_mode_by_bytes.unwrap_or("-"),
                prism_c.dominant_mode_by_bytes.unwrap_or("-")
            ),
        ),
    ];

    ExperimentOutput {
        experiment: Experiment::Section6Comparison,
        rendered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_runs() {
        let out = section6(Scale::Smoke);
        assert!(out.rendered.contains("ESCAT-A"));
        assert!(out.rendered.contains("PRISM-C"));
        assert_eq!(out.checks.len(), 6);
    }
}
