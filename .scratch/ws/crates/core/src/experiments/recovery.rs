//! Checkpoint/restart recovery experiments: end-to-end
//! time-to-solution under a compute-node crash.
//!
//! The resilience experiments ask what the PFS does when *it* is the
//! unreliable party; these ask the complementary question the paper's
//! applications answered with their checkpoint files — what does a
//! compute-partition failure cost the application, and how much of
//! that cost does a checkpoint policy buy back? Each experiment runs
//! one paper workload to solution under the same single crash, once
//! per checkpoint policy (no checkpoints, the application's fixed
//! cadence, and Young's optimum interval), and reports the recovery
//! accounting side by side.
//!
//! The crash is *placed*, not drawn: it strikes halfway between the
//! fixed policy's first and second commit instants, both measured from
//! a fault-free run. That makes every row's outcome provable — the
//! no-checkpoint row must replay everything, the fixed row loses at
//! most the work since its first commit — where a seeded crash could
//! land anywhere. (Seeded MTBF scenarios are exercised by the `mtbf`
//! sweep, which owns the stochastic axis.)

use crate::experiments::{Experiment, ExperimentOutput, Scale, ShapeCheck};
use crate::recovery::run_with_recovery;
use crate::simulator::{run, RunResult, SimOptions};
use sioscope_faults::{FaultKind, FaultSchedule};
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::{FileId, Time};
use sioscope_workloads::{
    CheckpointPolicy, EscatConfig, EscatVersion, PrismConfig, PrismVersion, Recoverable,
};
use std::fmt::Write as _;

fn must_run(workload: &sioscope_workloads::Workload, pfs: PfsConfig) -> RunResult {
    run(workload, pfs, SimOptions::default())
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name))
}

/// Total time spent writing the checkpoint files in `r`, for deriving
/// a measured per-checkpoint cost to feed Young's formula.
fn checkpoint_write_time(r: &RunResult, rec: &Recoverable) -> Time {
    let files: Vec<FileId> = rec.checkpoint_files().iter().map(|f| FileId(*f)).collect();
    r.trace
        .events()
        .iter()
        .filter(|e| e.kind == OpKind::Write && files.contains(&e.file))
        .map(|e| e.duration)
        .fold(Time::ZERO, |acc, d| acc.saturating_add(d))
}

fn recovery_experiment(
    experiment: Experiment,
    title: &str,
    make: &dyn Fn(CheckpointPolicy) -> Recoverable,
    fixed_interval: u32,
) -> ExperimentOutput {
    let none = make(CheckpointPolicy::None);
    let fixed = make(CheckpointPolicy::Fixed {
        interval: fixed_interval,
    });
    let pfs = {
        let w = none.workload();
        PfsConfig::caltech(w.nodes, w.os)
    };

    // Fault-free runs: the plain baseline, and the fixed policy's
    // commit instants, which place the crash.
    let plain = must_run(none.workload(), pfs.clone());
    let baseline = plain.exec_time;
    let marked = must_run(fixed.workload(), pfs.clone());
    assert!(
        marked.checkpoint_commits.len() >= 2,
        "{}: fixed policy must commit at least twice to place the crash",
        experiment.id()
    );
    let first_commit = marked.checkpoint_commits[0].1;
    let second_commit = marked.checkpoint_commits[1].1;
    let crash_at = first_commit.saturating_add(second_commit) / 2;
    let reboot = baseline.scale(0.05).max(Time::from_secs(1));
    let mut crashes = FaultSchedule::empty();
    crashes.push(
        crash_at,
        FaultKind::ComputeNodeCrash {
            node: 0,
            rework: reboot,
        },
    );

    // Young's interval from measured quantities: the per-checkpoint
    // write cost of the fixed cadence, and an MTBF pessimistically
    // assuming the partition fails most runs.
    let checkpoint_cost = checkpoint_write_time(&marked, &fixed) / u64::from(fixed.checkpoints());
    let mtbf = baseline.scale(0.8);
    let young = make(CheckpointPolicy::Young {
        checkpoint_cost,
        mtbf,
    });

    let fault_free = run_with_recovery(
        &none,
        &FaultSchedule::empty(),
        pfs.clone(),
        SimOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: fault-free recovery: {e}", experiment.id()));
    let policies: Vec<(&'static str, &Recoverable)> =
        vec![("none", &none), ("fixed", &fixed), ("young", &young)];
    let rows: Vec<(&'static str, u32, RunResult)> = policies
        .iter()
        .map(|(label, rec)| {
            let r = run_with_recovery(rec, &crashes, pfs.clone(), SimOptions::default())
                .unwrap_or_else(|e| panic!("{}: policy {label}: {e}", experiment.id()));
            (*label, rec.checkpoints(), r)
        })
        .collect();

    let mut rendered = String::new();
    let _ = writeln!(rendered, "{title}");
    let _ = writeln!(
        rendered,
        "  fault-free baseline: exec {:>10}; crash at {} (reboot {})",
        baseline, crash_at, reboot
    );
    let _ = writeln!(
        rendered,
        "  Young inputs: checkpoint cost {}, MTBF {}",
        checkpoint_cost, mtbf
    );
    let _ = writeln!(
        rendered,
        "  {:<8}{:>7}{:>9}{:>10}{:>12}{:>12}{:>14}{:>12}{:>9}",
        "policy",
        "ckpts",
        "crashes",
        "attempts",
        "rework",
        "restart",
        "ckpt-read",
        "TTS",
        "vs base"
    );
    let _ = writeln!(rendered, "  {}", "-".repeat(91));
    for (label, ckpts, r) in &rows {
        let st = r.recovery;
        let vs = if baseline.is_zero() {
            1.0
        } else {
            st.time_to_solution.as_secs_f64() / baseline.as_secs_f64()
        };
        let _ = writeln!(
            rendered,
            "  {:<8}{:>7}{:>9}{:>10}{:>11.1}s{:>11.1}s{:>13} B{:>11.1}s{:>8.2}x",
            label,
            ckpts,
            st.crashes,
            st.attempts,
            st.rework.as_secs_f64(),
            st.restart_latency.as_secs_f64(),
            st.checkpoint_read_bytes,
            st.time_to_solution.as_secs_f64(),
            vs
        );
    }

    fn find<'a>(rows: &'a [(&'static str, u32, RunResult)], label: &str) -> &'a RunResult {
        &rows.iter().find(|(l, _, _)| *l == label).expect("row").2
    }
    let r_none = find(&rows, "none");
    let r_fixed = find(&rows, "fixed");
    let r_young = find(&rows, "young");
    let checks = vec![
        ShapeCheck::new(
            "fault-free recovery is the plain run",
            fault_free.exec_time == baseline
                && fault_free.recovery.time_to_solution == baseline
                && fault_free.recovery.attempts == 1,
            format!("{} vs {baseline}", fault_free.recovery.time_to_solution),
        ),
        ShapeCheck::new(
            "the placed crash engages every policy",
            rows.iter().all(|(_, _, r)| r.recovery.crashes >= 1),
            format!(
                "crashes: {:?}",
                rows.iter()
                    .map(|(l, _, r)| (*l, r.recovery.crashes))
                    .collect::<Vec<_>>()
            ),
        ),
        ShapeCheck::new(
            "every policy rides out the crash and the reboot",
            rows.iter()
                .all(|(_, _, r)| r.recovery.time_to_solution >= crash_at.saturating_add(reboot)),
            format!("crash {crash_at} + reboot {reboot}"),
        ),
        ShapeCheck::new(
            "without checkpoints the whole prefix is rework",
            r_none.recovery.rework == crash_at,
            format!("{} vs {crash_at}", r_none.recovery.rework),
        ),
        ShapeCheck::new(
            "checkpoints bound the rework",
            r_fixed.recovery.rework < r_none.recovery.rework,
            format!("{} vs {}", r_fixed.recovery.rework, r_none.recovery.rework),
        ),
        ShapeCheck::new(
            "a crash after a commit costs more wall clock than the baseline",
            r_none.recovery.time_to_solution > baseline,
            format!("{} vs {baseline}", r_none.recovery.time_to_solution),
        ),
        ShapeCheck::new(
            "replays re-read the checkpoint through the PFS",
            r_fixed.recovery.checkpoint_read_bytes > 0
                && r_none.recovery.checkpoint_read_bytes == 0,
            format!(
                "fixed read {} B, none read {} B",
                r_fixed.recovery.checkpoint_read_bytes, r_none.recovery.checkpoint_read_bytes
            ),
        ),
        ShapeCheck::new(
            "Young's policy commits checkpoints",
            young.checkpoints() >= 1 && r_young.recovery.attempts >= 2,
            format!("{} checkpoints", young.checkpoints()),
        ),
    ];
    ExperimentOutput {
        experiment,
        rendered,
        checks,
    }
}

/// ESCAT (version C) recovering from a mid-computation crash: markers
/// after every compute cycle, channel files as the checkpoint.
pub fn escat(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Full => EscatConfig::ethylene(EscatVersion::C),
        Scale::Smoke => EscatConfig::tiny(EscatVersion::C),
    };
    recovery_experiment(
        Experiment::RecoveryEscat,
        "Recovery: ESCAT C time-to-solution under a compute-node crash",
        &|p| cfg.recoverable(p),
        1,
    )
}

/// PRISM (version B) recovering from a mid-computation crash: the
/// restart file the paper describes is the checkpoint, re-read in
/// 155,584-byte records by the replay's phase one.
pub fn prism(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Full => PrismConfig::test_problem(PrismVersion::B),
        Scale::Smoke => PrismConfig::tiny(PrismVersion::B),
    };
    let native = cfg.checkpoint_every;
    recovery_experiment(
        Experiment::RecoveryPrism,
        "Recovery: PRISM B time-to-solution under a compute-node crash",
        &|p| cfg.recoverable(p),
        native,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escat_recovery_passes_checks_at_smoke_scale() {
        let out = escat(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("young"));
        assert!(out.rendered.contains("vs base"));
    }

    #[test]
    fn prism_recovery_passes_checks_at_smoke_scale() {
        let out = prism(Scale::Smoke);
        assert!(
            out.all_pass(),
            "{}\nfailed: {:?}",
            out.rendered,
            out.failures()
        );
        assert!(out.rendered.contains("none"));
    }

    #[test]
    fn recovery_experiments_render_deterministically() {
        let a = prism(Scale::Smoke);
        let b = prism(Scale::Smoke);
        assert_eq!(a.rendered, b.rendered);
    }
}
