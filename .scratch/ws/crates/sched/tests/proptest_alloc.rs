//! Property-based tests of the 2-D partition allocator.
//!
//! The allocator underpins every multi-job schedule: if two live
//! partitions ever share a cell, two jobs' compute phases would
//! interleave on one node and the contention results would be
//! garbage. These properties drive random alloc/free churn against
//! both policies and check, after every step:
//!
//! * live partitions never overlap and never leave the compute
//!   complement;
//! * `allocate` is complete — it finds a placement exactly when a
//!   naive exhaustive scan over anchors says one exists;
//! * freeing everything restores a pristine allocator;
//! * identical op sequences place identically (determinism).

use proptest::prelude::*;
use sioscope_sched::{AllocPolicy, Partition, PartitionAllocator};
use std::collections::HashSet;

fn policy_strategy() -> impl Strategy<Value = AllocPolicy> {
    prop_oneof![Just(AllocPolicy::FirstFit), Just(AllocPolicy::BestFit)]
}

/// A mesh small enough to exhaust quickly but large enough to
/// fragment: `rows × cols` with a possibly-partial compute complement.
fn mesh() -> impl Strategy<Value = (u32, u32, u32)> {
    (1u32..=8, 1u32..=16).prop_flat_map(|(rows, cols)| (Just(rows), Just(cols), 1u32..=rows * cols))
}

/// Reference feasibility oracle: an `n`-node request fits iff some
/// anchor places the canonical shape entirely on free compute cells.
/// Deliberately re-derived from the shape rule in the module docs, not
/// from the allocator's own `fits_at`.
fn reference_fits(
    rows: u32,
    cols: u32,
    compute: u32,
    occupied: &HashSet<(u32, u32)>,
    n: u32,
) -> bool {
    let w = n.clamp(1, cols);
    let h = n.div_ceil(w);
    if h > rows || n > compute {
        return false;
    }
    for y in 0..=(rows - h) {
        'anchor: for x in 0..=(cols - w) {
            for p in 0..n {
                let (cx, cy) = (x + p % w, y + p / w);
                if cy * cols + cx >= compute || occupied.contains(&(cx, cy)) {
                    continue 'anchor;
                }
            }
            return true;
        }
    }
    false
}

/// Run one alloc/free churn sequence, returning every partition ever
/// granted (in grant order) and the final live set.
fn churn(
    rows: u32,
    cols: u32,
    compute: u32,
    policy: AllocPolicy,
    ops: &[(bool, u64, u32)],
) -> (Vec<Partition>, Vec<Partition>, PartitionAllocator) {
    let mut alloc = PartitionAllocator::new(rows, cols, compute, policy);
    let mut live: Vec<Partition> = Vec::new();
    let mut granted: Vec<Partition> = Vec::new();
    for &(free_first, pick, n) in ops {
        if free_first && !live.is_empty() {
            let victim = live.swap_remove((pick % live.len() as u64) as usize);
            alloc.free(&victim);
        }
        if let Some(p) = alloc.allocate(n) {
            granted.push(p);
            live.push(p);
        }
    }
    (granted, live, alloc)
}

proptest! {
    /// After every churn step: no two live partitions share a cell,
    /// every cell is a real compute node, the free count balances, and
    /// `allocate` succeeds exactly when the reference oracle says a
    /// placement exists.
    #[test]
    fn live_partitions_disjoint_in_bounds_and_complete(
        (rows, cols, compute) in mesh(),
        policy in policy_strategy(),
        ops in prop::collection::vec((any::<bool>(), any::<u64>(), 1u32..=20), 1..60),
    ) {
        let mut alloc = PartitionAllocator::new(rows, cols, compute, policy);
        let mut live: Vec<Partition> = Vec::new();
        for &(free_first, pick, n) in &ops {
            if free_first && !live.is_empty() {
                let victim = live.swap_remove((pick % live.len() as u64) as usize);
                alloc.free(&victim);
            }
            let occupied: HashSet<(u32, u32)> =
                live.iter().flat_map(|p| p.cells()).collect();
            let feasible = reference_fits(rows, cols, compute, &occupied, n);
            match alloc.allocate(n) {
                Some(p) => {
                    prop_assert!(feasible, "allocator placed an infeasible {n}-node request");
                    prop_assert_eq!(p.nodes, n);
                    prop_assert_eq!(p.w, n.clamp(1, cols), "shape width rule violated");
                    prop_assert_eq!(p.h, n.div_ceil(n.clamp(1, cols)));
                    live.push(p);
                }
                None => {
                    prop_assert!(!feasible, "allocator missed a feasible {n}-node placement");
                }
            }
            let mut seen: HashSet<(u32, u32)> = HashSet::new();
            let mut busy = 0u32;
            for p in &live {
                for (x, y) in p.cells() {
                    prop_assert!(x < cols && y < rows, "cell ({x},{y}) off the mesh");
                    prop_assert!(
                        y * cols + x < compute,
                        "cell ({x},{y}) is not a compute node"
                    );
                    prop_assert!(seen.insert((x, y)), "cell ({x},{y}) double-booked");
                    busy += 1;
                }
            }
            prop_assert_eq!(alloc.free_nodes(), compute - busy, "free-node accounting drifted");
        }
    }

    /// Freeing every live partition — in arbitrary order — restores a
    /// pristine allocator: empty, full free count, and able to grant
    /// the whole compute complement as one partition again.
    #[test]
    fn alloc_free_round_trips_to_empty(
        (rows, cols, compute) in mesh(),
        policy in policy_strategy(),
        sizes in prop::collection::vec(1u32..=20, 1..40),
        picks in prop::collection::vec(any::<u64>(), 40),
    ) {
        let mut alloc = PartitionAllocator::new(rows, cols, compute, policy);
        let mut live: Vec<Partition> = Vec::new();
        for &n in &sizes {
            if let Some(p) = alloc.allocate(n) {
                live.push(p);
            }
        }
        let mut pick = picks.iter().copied().cycle();
        while !live.is_empty() {
            let victim =
                live.swap_remove((pick.next().unwrap() % live.len() as u64) as usize);
            alloc.free(&victim);
        }
        prop_assert!(alloc.is_empty(), "cells leaked after freeing everything");
        prop_assert_eq!(alloc.free_nodes(), alloc.capacity());
        prop_assert_eq!(alloc.capacity(), compute);
        // The coalesced grid grants the whole machine in one request,
        // anchored at the origin like a dedicated run.
        let p = alloc.allocate(compute);
        prop_assert!(p.is_some(), "full-machine request failed on an empty grid");
        let p = p.unwrap();
        prop_assert_eq!((p.x, p.y), (0, 0));
        prop_assert_eq!(p.nodes, compute);
    }

    /// `contains_machine_node` agrees with the cell iterator: the set
    /// of machine node ids a partition claims is exactly its cells'
    /// row-major ids.
    #[test]
    fn machine_node_membership_matches_cells(
        (rows, cols, compute) in mesh(),
        policy in policy_strategy(),
        sizes in prop::collection::vec(1u32..=20, 1..20),
    ) {
        let mut alloc = PartitionAllocator::new(rows, cols, compute, policy);
        for &n in &sizes {
            if let Some(p) = alloc.allocate(n) {
                let from_cells: HashSet<u32> =
                    p.cells().map(|(x, y)| y * cols + x).collect();
                let from_contains: HashSet<u32> = (0..rows * cols)
                    .filter(|&id| p.contains_machine_node(id, cols))
                    .collect();
                prop_assert_eq!(from_cells, from_contains);
            }
        }
    }

    /// The allocator is a pure function of its op sequence: replaying
    /// the same churn yields bit-identical placements under either
    /// policy (best-fit ties are broken row-major, not arbitrarily).
    #[test]
    fn identical_op_sequences_place_identically(
        (rows, cols, compute) in mesh(),
        policy in policy_strategy(),
        ops in prop::collection::vec((any::<bool>(), any::<u64>(), 1u32..=20), 1..60),
    ) {
        let (granted_a, live_a, _) = churn(rows, cols, compute, policy, &ops);
        let (granted_b, live_b, _) = churn(rows, cols, compute, policy, &ops);
        prop_assert_eq!(granted_a, granted_b, "placement depends on more than the op sequence");
        prop_assert_eq!(live_a, live_b);
    }
}
