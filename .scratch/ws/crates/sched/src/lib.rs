//! # sioscope-sched
//!
//! A deterministic space-sharing batch scheduler over the simulated
//! Paragon. The paper (§3.2) measured ESCAT and PRISM in *dedicated*
//! mode and explicitly notes that production machines run mixed
//! workloads whose jobs contend for the same sixteen I/O nodes; this
//! crate supplies the scheduling layer that multi-tenant story needs:
//!
//! * [`JobStream`] — seeded job-arrival generators (open Poisson,
//!   closed-loop, and scripted streams) over any serde-declarable
//!   [`sioscope_workloads::Workload`], in the same declarative style
//!   as `FaultSchedule`;
//! * [`PartitionAllocator`] — a 2-D sub-mesh allocator over the
//!   machine's compute grid (first-fit and best-fit, with freed
//!   partitions coalescing automatically), so co-resident jobs get
//!   disjoint compute nodes while sharing I/O nodes and mesh links;
//! * [`QueuePolicy`] — FCFS and EASY backfill;
//! * [`ScheduleStats`] / [`JobOutcome`] — makespan and per-job
//!   wait/stretch/bounded-slowdown accounting.
//!
//! The multi-job event loop that drives all of this against one shared
//! [`Pfs`](../sioscope_pfs/struct.Pfs.html) lives in the `sioscope`
//! core crate (`sioscope::schedule`), next to the dedicated-mode
//! simulator it generalizes.

pub mod alloc;
pub mod policy;
pub mod stats;
pub mod stream;

pub use alloc::{AllocPolicy, Partition, PartitionAllocator};
pub use policy::QueuePolicy;
pub use stats::{JobOutcome, ScheduleStats, DEFAULT_BSLD_TAU};
pub use stream::{JobArrival, JobStream, JobTemplate, StreamKind};
