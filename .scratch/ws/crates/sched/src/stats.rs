//! Per-job outcomes and schedule-level aggregates.
//!
//! The slowdown vocabulary follows the batch-scheduling literature:
//!
//! * **wait** — time from arrival until the job's partition is first
//!   granted;
//! * **response** — arrival to finish, including every requeued attempt;
//! * **stretch** — response divided by the job's *dedicated-mode*
//!   execution time (the whole machine to itself);
//! * **bounded slowdown** — `max(1, response / max(dedicated, tau))`,
//!   which stops sub-`tau` jobs from dominating the mean. The
//!   conventional threshold [`DEFAULT_BSLD_TAU`] is ten seconds.

use serde::{Deserialize, Serialize};
use sioscope_sim::{JobId, Time};

/// Conventional bounded-slowdown threshold: ten seconds.
pub const DEFAULT_BSLD_TAU: Time = Time::from_secs(10);

/// Everything the scheduler learned about one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Scheduler-assigned identity (arrival order).
    pub job: JobId,
    /// Template label the job was instantiated from.
    pub label: String,
    /// Index into the stream's template list.
    pub template: usize,
    /// Compute nodes the job's partition holds.
    pub nodes: u32,
    /// When the job entered the queue.
    pub arrival: Time,
    /// When its partition was first granted (first attempt's start).
    pub first_start: Time,
    /// When its final attempt finished.
    pub finish: Time,
    /// Dedicated-mode execution time (EASY estimate and the stretch /
    /// bounded-slowdown denominator).
    pub dedicated: Time,
    /// Number of attempts (1 unless crashes forced requeues).
    pub attempts: u32,
    /// Aggregate I/O time across the job's nodes (final attempt).
    pub io_time: Time,
    /// Simulator events consumed by the job (final attempt).
    pub events: u64,
}

impl JobOutcome {
    /// Queue wait: arrival until the partition was first granted.
    pub fn wait(&self) -> Time {
        self.first_start.saturating_sub(self.arrival)
    }

    /// Response time: arrival to final finish.
    pub fn response(&self) -> Time {
        self.finish.saturating_sub(self.arrival)
    }

    /// Service time actually spent holding a partition (first grant to
    /// final finish; includes crash rework).
    pub fn service(&self) -> Time {
        self.finish.saturating_sub(self.first_start)
    }

    /// Response over dedicated-mode execution time.
    pub fn stretch(&self) -> f64 {
        let d = self.dedicated.as_secs_f64();
        if d <= 0.0 {
            return 1.0;
        }
        self.response().as_secs_f64() / d
    }

    /// Bounded slowdown with threshold `tau`.
    pub fn bounded_slowdown(&self, tau: Time) -> f64 {
        let denom = self.dedicated.max(tau).as_secs_f64();
        if denom <= 0.0 {
            return 1.0;
        }
        (self.response().as_secs_f64() / denom).max(1.0)
    }
}

/// Aggregate results of one scheduled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Queue policy label ("fcfs" / "easy-backfill").
    pub policy: String,
    /// First arrival to last finish.
    pub makespan: Time,
    /// Simulator events consumed across all jobs and attempts.
    pub total_events: u64,
    /// Per-job outcomes, in arrival (JobId) order.
    pub jobs: Vec<JobOutcome>,
    /// Per-I/O-node busy fraction over the makespan.
    pub ion_utilization: Vec<f64>,
}

impl ScheduleStats {
    fn mean_of(&self, f: impl Fn(&JobOutcome) -> f64) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(f).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean queue wait in seconds.
    pub fn mean_wait(&self) -> f64 {
        self.mean_of(|j| j.wait().as_secs_f64())
    }

    /// Mean stretch (response / dedicated).
    pub fn mean_stretch(&self) -> f64 {
        self.mean_of(|j| j.stretch())
    }

    /// Mean bounded slowdown with threshold `tau`.
    pub fn mean_bounded_slowdown(&self, tau: Time) -> f64 {
        self.mean_of(|j| j.bounded_slowdown(tau))
    }

    /// Mean bounded slowdown over jobs from one template, or `None` if
    /// the schedule ran none of them.
    pub fn mean_bounded_slowdown_of(&self, template: usize, tau: Time) -> Option<f64> {
        let picked: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.template == template)
            .map(|j| j.bounded_slowdown(tau))
            .collect();
        if picked.is_empty() {
            return None;
        }
        Some(picked.iter().sum::<f64>() / picked.len() as f64)
    }

    /// Human-readable table of the schedule.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "policy {}  jobs {}  makespan {}  events {}\n",
            self.policy,
            self.jobs.len(),
            self.makespan,
            self.total_events
        ));
        out.push_str(&format!(
            "mean wait {:.3}s  mean stretch {:.3}  mean bsld {:.3}\n",
            self.mean_wait(),
            self.mean_stretch(),
            self.mean_bounded_slowdown(DEFAULT_BSLD_TAU)
        ));
        out.push_str(
            "job        label            nodes  arrival      wait        response    bsld   att\n",
        );
        for j in &self.jobs {
            out.push_str(&format!(
                "{:<10} {:<16} {:>5}  {:>10.3}s  {:>9.3}s  {:>9.3}s  {:>5.2}  {:>3}\n",
                j.job.to_string(),
                j.label,
                j.nodes,
                j.arrival.as_secs_f64(),
                j.wait().as_secs_f64(),
                j.response().as_secs_f64(),
                j.bounded_slowdown(DEFAULT_BSLD_TAU),
                j.attempts,
            ));
        }
        if !self.ion_utilization.is_empty() {
            let mean = self.ion_utilization.iter().sum::<f64>() / self.ion_utilization.len() as f64;
            out.push_str(&format!(
                "ion utilization: mean {:.1}%  per-node [{}]\n",
                mean * 100.0,
                self.ion_utilization
                    .iter()
                    .map(|u| format!("{:.1}%", u * 100.0))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: u64, start: u64, finish: u64, dedicated: u64) -> JobOutcome {
        JobOutcome {
            job: JobId(0),
            label: "t".into(),
            template: 0,
            nodes: 4,
            arrival: Time::from_secs(arrival),
            first_start: Time::from_secs(start),
            finish: Time::from_secs(finish),
            dedicated: Time::from_secs(dedicated),
            attempts: 1,
            io_time: Time::ZERO,
            events: 10,
        }
    }

    #[test]
    fn wait_response_stretch() {
        let j = job(10, 25, 85, 30);
        assert_eq!(j.wait(), Time::from_secs(15));
        assert_eq!(j.response(), Time::from_secs(75));
        assert_eq!(j.service(), Time::from_secs(60));
        assert!((j.stretch() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors_at_one_and_respects_tau() {
        // Short job: dedicated 2s < tau 10s, response 5s -> 5/10 < 1 -> 1.
        let short = job(0, 0, 5, 2);
        assert_eq!(short.bounded_slowdown(DEFAULT_BSLD_TAU), 1.0);
        // Plain stretch would have said 2.5.
        assert!((short.stretch() - 2.5).abs() < 1e-12);
        // Long job: tau has no effect.
        let long = job(0, 20, 80, 40);
        assert!((long.bounded_slowdown(DEFAULT_BSLD_TAU) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_means_and_template_filter() {
        let mut a = job(0, 0, 40, 20);
        a.template = 0;
        let mut b = job(0, 20, 100, 20);
        b.template = 1;
        let stats = ScheduleStats {
            policy: "fcfs".into(),
            makespan: Time::from_secs(100),
            total_events: 20,
            jobs: vec![a, b],
            ion_utilization: vec![0.5, 0.25],
        };
        assert!((stats.mean_wait() - 10.0).abs() < 1e-12);
        assert!((stats.mean_stretch() - 3.5).abs() < 1e-12);
        let t0 = stats.mean_bounded_slowdown_of(0, DEFAULT_BSLD_TAU).unwrap();
        let t1 = stats.mean_bounded_slowdown_of(1, DEFAULT_BSLD_TAU).unwrap();
        assert!((t0 - 2.0).abs() < 1e-12);
        assert!((t1 - 5.0).abs() < 1e-12);
        assert!(stats
            .mean_bounded_slowdown_of(2, DEFAULT_BSLD_TAU)
            .is_none());
        let rendered = stats.render();
        assert!(rendered.contains("policy fcfs"));
        assert!(rendered.contains("ion utilization"));
    }

    #[test]
    fn empty_schedule_is_all_zero() {
        let stats = ScheduleStats {
            policy: "fcfs".into(),
            makespan: Time::ZERO,
            total_events: 0,
            jobs: Vec::new(),
            ion_utilization: Vec::new(),
        };
        assert_eq!(stats.mean_wait(), 0.0);
        assert_eq!(stats.mean_stretch(), 0.0);
        assert_eq!(stats.mean_bounded_slowdown(DEFAULT_BSLD_TAU), 0.0);
    }
}
