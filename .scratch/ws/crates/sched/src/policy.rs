//! Queueing policies for the batch scheduler.
//!
//! Both policies operate over the same waiting queue; the difference is
//! what the dispatcher may start when the head job does not fit:
//!
//! * [`QueuePolicy::Fcfs`] — strict arrival order. If the head job's
//!   partition request cannot be satisfied, nothing behind it starts.
//! * [`QueuePolicy::EasyBackfill`] — the head job holds a *shadow
//!   reservation*: using each running job's dedicated-mode execution
//!   time as its completion estimate, the dispatcher computes the
//!   earliest time enough nodes free up for the head, and allows a
//!   later job to jump the queue only if it fits right now **and** its
//!   own dedicated-mode estimate says it finishes before that shadow
//!   time (or it fits within the node surplus left over at the shadow
//!   time). Jobs never expand their partition, so estimates bound the
//!   resources a backfilled job can hold.

use serde::{Deserialize, Serialize};

/// Dispatch discipline for the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum QueuePolicy {
    /// Strict first-come-first-served: the queue head blocks everything
    /// behind it until its partition request can be satisfied.
    Fcfs,
    /// EASY backfilling: later jobs may start out of order if they do
    /// not delay the queue head's shadow reservation.
    EasyBackfill,
}

impl QueuePolicy {
    /// Stable identifier used in reports and serialized stats.
    pub fn label(self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "fcfs",
            QueuePolicy::EasyBackfill => "easy-backfill",
        }
    }
}

impl std::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(QueuePolicy::Fcfs.label(), "fcfs");
        assert_eq!(QueuePolicy::EasyBackfill.label(), "easy-backfill");
        assert_eq!(QueuePolicy::EasyBackfill.to_string(), "easy-backfill");
    }

    #[test]
    fn serde_round_trips_kebab_case() {
        let json = serde_json::to_string(&QueuePolicy::EasyBackfill).unwrap();
        assert_eq!(json, "\"easy-backfill\"");
        let back: QueuePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, QueuePolicy::EasyBackfill);
    }
}
