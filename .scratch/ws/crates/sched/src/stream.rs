//! Seeded job-arrival streams.
//!
//! A [`JobStream`] declares *which* workloads arrive and *when*, in the
//! same serde-declarable style as the fault schedules: an experiment
//! can embed a stream in JSON, and the same seed always produces the
//! same arrival instants and the same template picks.
//!
//! Determinism is structured so offered load can be swept without
//! perturbing the job mix: template picks draw from
//! `DetRng::new(seed).fork(TEMPLATE_SALT).fork(index)` (one pure fork
//! per arrival index), while Poisson interarrival gaps draw
//! sequentially from `fork(ARRIVAL_SALT)`. Scaling the mean
//! interarrival therefore compresses or dilates the *same* arrival
//! pattern over the *same* job sequence.

use serde::{Deserialize, Serialize};
use sioscope_sim::{DetRng, Time};
use sioscope_workloads::Workload;

/// Fork tag for the sequential interarrival-gap stream.
const ARRIVAL_SALT: u64 = 0x5ced_0000_0000_0001;
/// Fork tag for per-index template picks.
const TEMPLATE_SALT: u64 = 0x5ced_0000_0000_0002;

/// One workload the stream can instantiate, with a sampling weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTemplate {
    /// Label carried into per-job outcomes.
    pub label: String,
    /// The dedicated-mode workload this job runs.
    pub workload: Workload,
    /// Relative sampling weight (must be positive).
    pub weight: u32,
}

/// How arrival instants are generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum StreamKind {
    /// Open stream: exponential interarrival gaps with the given mean.
    Poisson { mean_interarrival: Time },
    /// Closed loop: `population` jobs cycle; each completion spawns its
    /// successor after `think_time`.
    ClosedLoop { population: u32, think_time: Time },
    /// Explicit `(arrival, template index)` list, in submission order.
    Scripted { arrivals: Vec<(Time, usize)> },
}

/// A declarative, seeded job-arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStream {
    /// Arrival-instant generator.
    pub kind: StreamKind,
    /// Master seed; forked, never used directly.
    pub seed: u64,
    /// Candidate workloads (weighted for Poisson / closed-loop picks).
    pub templates: Vec<JobTemplate>,
    /// Total jobs the stream emits (for Scripted this must equal the
    /// arrival list length).
    pub count: u32,
}

/// One materialized arrival: when, and which template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobArrival {
    /// Absolute arrival instant.
    pub at: Time,
    /// Index into [`JobStream::templates`].
    pub template: usize,
}

impl JobStream {
    /// Validate the stream's internal consistency.
    ///
    /// Checks: at least one template, all weights positive, every
    /// template workload valid, all templates on the same OS release
    /// (one shared PFS serves every job), scripted indices in range and
    /// arrivals sorted, and `count` consistent with the kind.
    pub fn validate(&self) -> Result<(), String> {
        if self.templates.is_empty() {
            return Err("job stream needs at least one template".into());
        }
        for (i, t) in self.templates.iter().enumerate() {
            if t.weight == 0 {
                return Err(format!("template {i} ({}) has zero weight", t.label));
            }
            let problems = t.workload.validate();
            if !problems.is_empty() {
                return Err(format!(
                    "template {i} ({}): {}",
                    t.label,
                    problems.join("; ")
                ));
            }
        }
        let os = self.templates[0].workload.os;
        if let Some(t) = self.templates.iter().find(|t| t.workload.os != os) {
            return Err(format!(
                "all templates must target one OS release (shared PFS); {} differs",
                t.label
            ));
        }
        match &self.kind {
            StreamKind::Poisson { mean_interarrival } => {
                if *mean_interarrival == Time::ZERO {
                    return Err("poisson stream needs a positive mean interarrival".into());
                }
            }
            StreamKind::ClosedLoop { population, .. } => {
                if *population == 0 {
                    return Err("closed loop needs a positive population".into());
                }
            }
            StreamKind::Scripted { arrivals } => {
                if arrivals.len() != self.count as usize {
                    return Err(format!(
                        "scripted stream count {} != arrival list length {}",
                        self.count,
                        arrivals.len()
                    ));
                }
                let mut prev = Time::ZERO;
                for (i, (at, template)) in arrivals.iter().enumerate() {
                    if *template >= self.templates.len() {
                        return Err(format!(
                            "scripted arrival {i} references template {template} of {}",
                            self.templates.len()
                        ));
                    }
                    if *at < prev {
                        return Err(format!("scripted arrival {i} goes back in time"));
                    }
                    prev = *at;
                }
            }
        }
        Ok(())
    }

    /// Weighted template pick for arrival `index`; pure in `index`.
    pub fn pick_template(&self, index: u32) -> usize {
        let total: u64 = self.templates.iter().map(|t| u64::from(t.weight)).sum();
        let mut rng = DetRng::new(self.seed)
            .fork(TEMPLATE_SALT)
            .fork(u64::from(index));
        let mut roll = (rng.unit() * total as f64) as u64;
        if roll >= total {
            roll = total - 1;
        }
        for (i, t) in self.templates.iter().enumerate() {
            let w = u64::from(t.weight);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        self.templates.len() - 1
    }

    /// The arrivals known before the simulation starts.
    ///
    /// Poisson and Scripted streams are fully materialized here; a
    /// closed loop releases its initial `population` at time zero and
    /// feeds the rest through [`Self::next_arrival_after`].
    pub fn initial_arrivals(&self) -> Vec<JobArrival> {
        match &self.kind {
            StreamKind::Poisson { mean_interarrival } => {
                let mean = mean_interarrival.as_secs_f64();
                let mut rng = DetRng::new(self.seed).fork(ARRIVAL_SALT);
                let mut t = Time::ZERO;
                (0..self.count)
                    .map(|i| {
                        if i > 0 {
                            let u = rng.unit();
                            t = t + Time::from_secs_f64(-mean * (1.0 - u).ln());
                        }
                        JobArrival {
                            at: t,
                            template: self.pick_template(i),
                        }
                    })
                    .collect()
            }
            StreamKind::ClosedLoop { population, .. } => (0..(*population).min(self.count))
                .map(|i| JobArrival {
                    at: Time::ZERO,
                    template: self.pick_template(i),
                })
                .collect(),
            StreamKind::Scripted { arrivals } => arrivals
                .iter()
                .map(|&(at, template)| JobArrival { at, template })
                .collect(),
        }
    }

    /// Closed-loop feedback: the arrival spawned by a completion at
    /// `now`, given `spawned` jobs have been created so far. Returns
    /// `None` for open streams or once `count` is reached.
    pub fn next_arrival_after(&self, spawned: u32, now: Time) -> Option<JobArrival> {
        let StreamKind::ClosedLoop { think_time, .. } = &self.kind else {
            return None;
        };
        if spawned >= self.count {
            return None;
        }
        Some(JobArrival {
            at: now + *think_time,
            template: self.pick_template(spawned),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sioscope_workloads::Workload;

    fn tiny_workload(name: &str) -> Workload {
        use sioscope_workloads::program::Stmt;
        Workload {
            name: name.into(),
            version: "test".into(),
            os: sioscope_workloads::OsRelease::Osf12,
            nodes: 2,
            files: Vec::new(),
            programs: vec![
                vec![Stmt::Compute(Time::from_millis(5))],
                vec![Stmt::Compute(Time::from_millis(5))],
            ],
            phases: Vec::new(),
        }
    }

    fn stream(kind: StreamKind, count: u32) -> JobStream {
        JobStream {
            kind,
            seed: 42,
            templates: vec![
                JobTemplate {
                    label: "a".into(),
                    workload: tiny_workload("a"),
                    weight: 3,
                },
                JobTemplate {
                    label: "b".into(),
                    workload: tiny_workload("b"),
                    weight: 1,
                },
            ],
            count,
        }
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let s = stream(
            StreamKind::Poisson {
                mean_interarrival: Time::from_secs(5),
            },
            16,
        );
        s.validate().unwrap();
        let a = s.initial_arrivals();
        let b = s.initial_arrivals();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(a[0].at, Time::ZERO);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn load_scaling_keeps_the_template_sequence() {
        let slow = stream(
            StreamKind::Poisson {
                mean_interarrival: Time::from_secs(10),
            },
            32,
        );
        let fast = JobStream {
            kind: StreamKind::Poisson {
                mean_interarrival: Time::from_secs(5),
            },
            ..slow.clone()
        };
        let a = slow.initial_arrivals();
        let b = fast.initial_arrivals();
        // Same job mix...
        assert_eq!(
            a.iter().map(|j| j.template).collect::<Vec<_>>(),
            b.iter().map(|j| j.template).collect::<Vec<_>>()
        );
        // ...compressed in time.
        assert!(b.last().unwrap().at < a.last().unwrap().at);
    }

    #[test]
    fn template_picks_respect_weights_roughly() {
        let s = stream(
            StreamKind::Poisson {
                mean_interarrival: Time::from_secs(1),
            },
            400,
        );
        let heavy = (0..400).filter(|&i| s.pick_template(i) == 0).count();
        // Weight 3:1 — expect ~300 picks of template 0; allow wide slack.
        assert!((220..=380).contains(&heavy), "heavy = {heavy}");
    }

    #[test]
    fn closed_loop_releases_population_then_feeds_back() {
        let s = stream(
            StreamKind::ClosedLoop {
                population: 3,
                think_time: Time::from_secs(2),
            },
            5,
        );
        s.validate().unwrap();
        let init = s.initial_arrivals();
        assert_eq!(init.len(), 3);
        assert!(init.iter().all(|j| j.at == Time::ZERO));
        let next = s.next_arrival_after(3, Time::from_secs(10)).unwrap();
        assert_eq!(next.at, Time::from_secs(12));
        assert!(s.next_arrival_after(5, Time::from_secs(10)).is_none());
    }

    #[test]
    fn scripted_validates_and_materializes() {
        let s = stream(
            StreamKind::Scripted {
                arrivals: vec![
                    (Time::ZERO, 0),
                    (Time::from_secs(1), 1),
                    (Time::from_secs(3), 0),
                ],
            },
            3,
        );
        s.validate().unwrap();
        let a = s.initial_arrivals();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].template, 1);

        let bad = stream(
            StreamKind::Scripted {
                arrivals: vec![(Time::ZERO, 7)],
            },
            1,
        );
        assert!(bad.validate().is_err());
        let unsorted = stream(
            StreamKind::Scripted {
                arrivals: vec![(Time::from_secs(2), 0), (Time::from_secs(1), 0)],
            },
            2,
        );
        assert!(unsorted.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_streams() {
        let mut s = stream(
            StreamKind::Poisson {
                mean_interarrival: Time::ZERO,
            },
            4,
        );
        assert!(s.validate().is_err());
        s.kind = StreamKind::Poisson {
            mean_interarrival: Time::from_secs(1),
        };
        s.templates[1].weight = 0;
        assert!(s.validate().is_err());
        s.templates.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let s = stream(
            StreamKind::Poisson {
                mean_interarrival: Time::from_secs(5),
            },
            8,
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: JobStream = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
