//! 2-D sub-mesh partition allocation.
//!
//! The Paragon space-shares its mesh: each admitted job receives a
//! rectangular sub-mesh of compute nodes and keeps it until
//! completion. The allocator here tracks per-cell occupancy of the
//! compute grid and carves out partitions under two policies:
//!
//! * **first fit** — the row-major-first anchor that fits;
//! * **best fit** — the feasible anchor whose partition touches the
//!   fewest free cells (snuggest packing against mesh edges and
//!   already-busy neighbours), ties broken row-major.
//!
//! Freed partitions clear their cells outright, so adjacent free
//! regions coalesce automatically — there is no free-list to merge,
//! and no fragmentation beyond what the live partitions themselves
//! impose.
//!
//! ## Shape invariant
//!
//! A request for `n` nodes is shaped as `w = min(n, cols)` columns by
//! `ceil(n / w)` rows, with local node `p` at offset
//! `(p % w, p / w)` from the anchor — row-major within the partition.
//! Anchored at the origin this reproduces the machine's dedicated-mode
//! row-major fill exactly (for `n ≥ cols` the widths agree; for
//! `n < cols` both lay the nodes along row zero), which is what makes
//! a single-job schedule bit-identical to a dedicated run.

use serde::{Deserialize, Serialize};
use sioscope_machine::MachineConfig;

/// Placement policy for new partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// First feasible anchor in row-major order.
    FirstFit,
    /// Feasible anchor with the fewest free neighbouring cells.
    BestFit,
}

impl AllocPolicy {
    /// Stable label (stats rendering, CLI).
    pub fn label(self) -> &'static str {
        match self {
            AllocPolicy::FirstFit => "first-fit",
            AllocPolicy::BestFit => "best-fit",
        }
    }
}

/// An allocated sub-mesh: anchor, shape, and the node count actually
/// occupied (the last row may be ragged when `nodes % w != 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Anchor column.
    pub x: u32,
    /// Anchor row.
    pub y: u32,
    /// Partition width (columns).
    pub w: u32,
    /// Partition height (rows).
    pub h: u32,
    /// Number of occupied cells (`≤ w·h`).
    pub nodes: u32,
}

impl Partition {
    /// Mesh coordinates of local node `p` (`0 ≤ p < nodes`): row-major
    /// from the anchor.
    pub fn position_of(&self, p: u32) -> (u32, u32) {
        debug_assert!(p < self.nodes);
        (self.x + p % self.w, self.y + p / self.w)
    }

    /// All occupied cells, in local-node order.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.nodes).map(|p| self.position_of(p))
    }

    /// Does the partition occupy the machine cell with row-major id
    /// `node` on a `cols`-wide mesh?
    pub fn contains_machine_node(&self, node: u32, cols: u32) -> bool {
        let (x, y) = (node % cols.max(1), node / cols.max(1));
        if x < self.x || y < self.y || y >= self.y + self.h {
            return false;
        }
        let (lx, ly) = (x - self.x, y - self.y);
        lx < self.w && ly * self.w + lx < self.nodes
    }

    /// Integer centroid of the occupied cells (coordinate sums divided
    /// by `nodes`, floored) — the partition's representative mesh
    /// position for routing-distance estimates.
    pub fn centroid(&self) -> (u32, u32) {
        debug_assert!(self.nodes > 0);
        let (mut sx, mut sy) = (0u64, 0u64);
        for (x, y) in self.cells() {
            sx += u64::from(x);
            sy += u64::from(y);
        }
        let n = u64::from(self.nodes.max(1));
        ((sx / n) as u32, (sy / n) as u32)
    }

    /// Mesh hops (Manhattan distance on the 2-D mesh) from this
    /// partition's centroid to the cell at `(x, y)` — e.g. a staging
    /// node's port on the mesh boundary.
    pub fn hops_to(&self, x: u32, y: u32) -> u32 {
        let (cx, cy) = self.centroid();
        cx.abs_diff(x) + cy.abs_diff(y)
    }

    /// Mesh hops between the centroids of two partitions — the path
    /// length a coupled producer→consumer stream traverses.
    pub fn hop_distance(&self, other: &Partition) -> u32 {
        let (ox, oy) = other.centroid();
        self.hops_to(ox, oy)
    }
}

/// Occupancy tracker over the machine's compute grid.
///
/// The grid covers the mesh's `rows × cols` cells, but only cells
/// whose row-major id is below `compute_nodes` are allocatable — the
/// machine's compute complement, matching
/// [`MachineConfig::compute_node_ids`].
#[derive(Debug, Clone)]
pub struct PartitionAllocator {
    rows: u32,
    cols: u32,
    compute_nodes: u32,
    policy: AllocPolicy,
    /// One occupancy bitmask per row (bit `x` = cell `(x, row)` busy).
    occ: Vec<u64>,
}

impl PartitionAllocator {
    /// An empty allocator over a `rows × cols` mesh with
    /// `compute_nodes` allocatable cells.
    ///
    /// # Panics
    /// Panics if `cols` exceeds 64 (one `u64` mask per row) or
    /// `compute_nodes` exceeds the grid.
    pub fn new(rows: u32, cols: u32, compute_nodes: u32, policy: AllocPolicy) -> Self {
        assert!(cols >= 1 && cols <= 64, "mesh width {cols} not in 1..=64");
        assert!(rows >= 1, "mesh must have rows");
        assert!(
            compute_nodes <= rows * cols,
            "{compute_nodes} compute nodes exceed the {rows}x{cols} grid"
        );
        PartitionAllocator {
            rows,
            cols,
            compute_nodes,
            policy,
            occ: vec![0u64; rows as usize],
        }
    }

    /// An allocator over `machine`'s compute grid.
    pub fn for_machine(machine: &MachineConfig, policy: AllocPolicy) -> Self {
        PartitionAllocator::new(
            machine.mesh.rows,
            machine.mesh.cols,
            machine.compute_nodes,
            policy,
        )
    }

    /// The canonical shape for an `n`-node request: full-mesh-width
    /// rows when `n ≥ cols`, a single row otherwise.
    pub fn shape_for(&self, n: u32) -> (u32, u32) {
        let w = n.clamp(1, self.cols);
        (w, n.div_ceil(w))
    }

    /// Free allocatable cells remaining.
    pub fn free_nodes(&self) -> u32 {
        let busy: u32 = self.occ.iter().map(|m| m.count_ones()).sum();
        self.compute_nodes - busy
    }

    /// `true` iff nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.occ.iter().all(|&m| m == 0)
    }

    /// Total allocatable cells.
    pub fn capacity(&self) -> u32 {
        self.compute_nodes
    }

    fn row_len(n: u32, w: u32, r: u32, h: u32) -> u32 {
        if r + 1 == h {
            n - w * (h - 1)
        } else {
            w
        }
    }

    fn mask(len: u32, x: u32) -> u64 {
        debug_assert!(len >= 1 && len <= 64);
        if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << x
        }
    }

    fn fits_at(&self, x: u32, y: u32, n: u32, w: u32, h: u32) -> bool {
        for r in 0..h {
            let len = Self::row_len(n, w, r, h);
            if self.occ[(y + r) as usize] & Self::mask(len, x) != 0 {
                return false;
            }
            // Every occupied cell must be a real compute node.
            if (y + r) * self.cols + x + len - 1 >= self.compute_nodes {
                return false;
            }
        }
        true
    }

    fn is_free_compute_cell(&self, x: i64, y: i64) -> bool {
        if x < 0 || y < 0 || x >= i64::from(self.cols) || y >= i64::from(self.rows) {
            return false;
        }
        if y as u32 * self.cols + x as u32 >= self.compute_nodes {
            return false;
        }
        self.occ[y as usize] & (1u64 << x) == 0
    }

    /// Best-fit score: free allocatable cells bordering the candidate
    /// partition (4-neighbourhood). Lower means the partition nestles
    /// against mesh edges and busy neighbours, preserving large free
    /// rectangles for later requests.
    fn adjacency_score(&self, x: u32, y: u32, n: u32, w: u32, h: u32) -> u32 {
        let p = Partition {
            x,
            y,
            w,
            h,
            nodes: n,
        };
        let inside = |nx: i64, ny: i64| -> bool {
            nx >= i64::from(p.x)
                && ny >= i64::from(p.y)
                && nx < i64::from(p.x + p.w)
                && ny < i64::from(p.y + p.h)
                && (ny - i64::from(p.y)) * i64::from(p.w) + (nx - i64::from(p.x))
                    < i64::from(p.nodes)
        };
        let mut score = 0u32;
        for (cx, cy) in p.cells() {
            for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                let (nx, ny) = (i64::from(cx) + dx, i64::from(cy) + dy);
                // Cells inside the partition itself don't count.
                if !inside(nx, ny) && self.is_free_compute_cell(nx, ny) {
                    score += 1;
                }
            }
        }
        score
    }

    /// Allocate an `n`-node partition, or `None` if no feasible anchor
    /// exists (insufficient capacity *or* fragmentation).
    pub fn allocate(&mut self, n: u32) -> Option<Partition> {
        if n == 0 || n > self.free_nodes() {
            return None;
        }
        let (w, h) = self.shape_for(n);
        if h > self.rows {
            return None;
        }
        let mut best: Option<(u32, u32, u32)> = None; // (score, y, x)
        for y in 0..=(self.rows - h) {
            for x in 0..=(self.cols - w) {
                if !self.fits_at(x, y, n, w, h) {
                    continue;
                }
                match self.policy {
                    AllocPolicy::FirstFit => {
                        return Some(self.mark(x, y, n, w, h));
                    }
                    AllocPolicy::BestFit => {
                        let score = self.adjacency_score(x, y, n, w, h);
                        if best.map_or(true, |b| (score, y, x) < b) {
                            best = Some((score, y, x));
                        }
                    }
                }
            }
        }
        best.map(|(_, y, x)| self.mark(x, y, n, w, h))
    }

    fn mark(&mut self, x: u32, y: u32, n: u32, w: u32, h: u32) -> Partition {
        for r in 0..h {
            let len = Self::row_len(n, w, r, h);
            let m = Self::mask(len, x);
            debug_assert_eq!(self.occ[(y + r) as usize] & m, 0);
            self.occ[(y + r) as usize] |= m;
        }
        Partition {
            x,
            y,
            w,
            h,
            nodes: n,
        }
    }

    /// Return a partition's cells to the free pool. Freed regions
    /// coalesce with their free neighbours by construction.
    ///
    /// # Panics
    /// Debug-panics if any cell was not allocated (double free).
    pub fn free(&mut self, p: &Partition) {
        for r in 0..p.h {
            let len = Self::row_len(p.nodes, p.w, r, p.h);
            let m = Self::mask(len, p.x);
            debug_assert_eq!(
                self.occ[(p.y + r) as usize] & m,
                m,
                "freeing cells that were not allocated"
            );
            self.occ[(p.y + r) as usize] &= !m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_8x2() -> PartitionAllocator {
        // 2 rows × 8 cols, all 16 cells allocatable.
        PartitionAllocator::new(2, 8, 16, AllocPolicy::FirstFit)
    }

    #[test]
    fn shape_matches_dedicated_row_major() {
        let a = alloc_8x2();
        assert_eq!(a.shape_for(3), (3, 1));
        assert_eq!(a.shape_for(8), (8, 1));
        assert_eq!(a.shape_for(11), (8, 2));
        let (w, _) = a.shape_for(5);
        let p = Partition {
            x: 0,
            y: 0,
            w,
            h: 1,
            nodes: 5,
        };
        for n in 0..5 {
            // Dedicated fill on an 8-wide mesh: (n % 8, n / 8).
            assert_eq!(p.position_of(n), (n % 8, n / 8));
        }
    }

    #[test]
    fn centroid_and_hop_distance_measure_the_mesh() {
        // 4×2 block anchored at (1,0): centroid over cells x∈{1..4},
        // y∈{0,1} is (2, 0) after integer floor (mean x = 2.5).
        let a = Partition {
            x: 1,
            y: 0,
            w: 4,
            h: 2,
            nodes: 8,
        };
        assert_eq!(a.centroid(), (2, 0));
        // Single cell: centroid is the cell itself.
        let b = Partition {
            x: 6,
            y: 1,
            w: 1,
            h: 1,
            nodes: 1,
        };
        assert_eq!(b.centroid(), (6, 1));
        assert_eq!(a.hops_to(6, 1), 5);
        assert_eq!(a.hop_distance(&b), 5);
        assert_eq!(b.hop_distance(&a), 5);
        assert_eq!(a.hop_distance(&a), 0);
        // Ragged last row shifts the centroid toward occupied cells.
        let ragged = Partition {
            x: 0,
            y: 0,
            w: 4,
            h: 2,
            nodes: 5,
        };
        // Cells (0..4,0) and (0,1): sx=6, sy=1 → (1, 0).
        assert_eq!(ragged.centroid(), (1, 0));
    }

    #[test]
    fn first_fit_packs_row_major_and_coalesces() {
        let mut a = alloc_8x2();
        let p1 = a.allocate(8).unwrap();
        assert_eq!((p1.x, p1.y), (0, 0));
        let p2 = a.allocate(4).unwrap();
        assert_eq!((p2.x, p2.y), (0, 1));
        let p3 = a.allocate(4).unwrap();
        assert_eq!((p3.x, p3.y), (4, 1));
        assert_eq!(a.free_nodes(), 0);
        assert!(a.allocate(1).is_none());
        a.free(&p2);
        a.free(&p3);
        // The freed halves of row 1 coalesce back into a full row.
        let p4 = a.allocate(8).unwrap();
        assert_eq!((p4.x, p4.y), (0, 1));
    }

    #[test]
    fn ragged_last_row_occupies_only_its_nodes() {
        let mut a = alloc_8x2();
        let p = a.allocate(11).unwrap(); // 8 + 3
        assert_eq!((p.w, p.h), (8, 2));
        assert_eq!(a.free_nodes(), 5);
        // The 5 unused cells of row 1 are still allocatable.
        let q = a.allocate(5).unwrap();
        assert_eq!((q.x, q.y), (3, 1));
        assert!(p.contains_machine_node(10, 8)); // (2,1) is node 2 of row 1
        assert!(!p.contains_machine_node(11, 8)); // (3,1) belongs to q
    }

    #[test]
    fn best_fit_prefers_snug_corners() {
        let mut a = PartitionAllocator::new(4, 8, 32, AllocPolicy::BestFit);
        let p1 = a.allocate(8).unwrap();
        assert_eq!((p1.x, p1.y), (0, 0));
        // A 2-node request: first-fit would take (0,1); best-fit also
        // takes a corner hugging the busy row and the mesh edge.
        let p2 = a.allocate(2).unwrap();
        assert_eq!(p2.y, 1, "hug the busy row, not an empty middle row");
    }

    #[test]
    fn respects_partial_compute_complement() {
        // 16×32 mesh but only 8 compute nodes (ids 0..8, row 0).
        let mut a = PartitionAllocator::new(16, 32, 8, AllocPolicy::FirstFit);
        assert!(a.allocate(9).is_none());
        let p = a.allocate(8).unwrap();
        assert_eq!((p.x, p.y, p.w, p.h), (0, 0, 8, 1));
        assert_eq!(a.free_nodes(), 0);
    }

    #[test]
    fn for_machine_matches_config() {
        let m = MachineConfig::tiny(); // 2×4 mesh, 4 compute nodes
        let mut a = PartitionAllocator::for_machine(&m, AllocPolicy::FirstFit);
        assert_eq!(a.capacity(), 4);
        assert!(a.allocate(5).is_none());
        assert!(a.allocate(4).is_some());
    }

    #[test]
    fn full_width_mask_is_safe() {
        // cols == 64 exercises the 1<<64 guard.
        let mut a = PartitionAllocator::new(1, 64, 64, AllocPolicy::FirstFit);
        let p = a.allocate(64).unwrap();
        assert_eq!(a.free_nodes(), 0);
        a.free(&p);
        assert_eq!(a.free_nodes(), 64);
        assert!(a.is_empty());
    }
}
