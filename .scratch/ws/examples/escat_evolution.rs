//! Reproduce the full ESCAT study of §4: Table 1, Figures 1–5 and
//! Tables 2–3, with shape checks against the paper's published values.
//!
//! ```text
//! cargo run --release --example escat_evolution            # paper scale
//! SIOSCOPE_SCALE=smoke cargo run --example escat_evolution # quick look
//! ```

use sioscope::experiments::{escat, run_experiment, Experiment, Scale};
use sioscope::report::render_output;
use sioscope_analysis::Evolution;
use sioscope_workloads::{EscatDataset, EscatVersion};

fn main() {
    let scale = match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Full,
    };
    let mut failures = 0;
    for e in [
        Experiment::EscatTable1,
        Experiment::EscatFig1,
        Experiment::EscatTable2,
        Experiment::EscatFig2,
        Experiment::EscatFig3,
        Experiment::EscatFig4,
        Experiment::EscatFig5,
        Experiment::EscatTable3,
    ] {
        let out = run_experiment(e, scale);
        print!("{}", render_output(&out));
        failures += out.failures().len();
    }
    // The §4.1 narrative as deltas: what each optimization bought.
    let ra = escat::run_version(EscatVersion::A, EscatDataset::Ethylene, scale);
    let rb = escat::run_version(EscatVersion::B, EscatDataset::Ethylene, scale);
    let rc = escat::run_version(EscatVersion::C, EscatDataset::Ethylene, scale);
    println!(
        "{}",
        Evolution::between("A", &ra.trace, "B", &rb.trace).render()
    );
    println!(
        "{}",
        Evolution::between("B", &rb.trace, "C", &rc.trace).render()
    );
    let ab = Evolution::between("A", &ra.trace, "B", &rb.trace);
    if let Some((k, saved)) = ab.biggest_win() {
        println!("A->B biggest win: {k} (-{saved:.1}s) — the node-zero read restructuring");
    }
    if let Some((k, added)) = ab.biggest_regression() {
        println!("A->B biggest cost: {k} (+{added:.1}s) — the M_UNIX seek pattern");
    }
    let bc = Evolution::between("B", &rb.trace, "C", &rc.trace);
    if let Some((k, saved)) = bc.biggest_win() {
        println!("B->C biggest win: {k} (-{saved:.1}s) — M_ASYNC");
    }

    if failures > 0 && scale == Scale::Full {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
}
