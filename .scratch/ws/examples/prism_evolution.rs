//! Reproduce the full PRISM study of §5: Table 4, Figures 6–9 and
//! Table 5, with shape checks against the paper's published values.
//!
//! ```text
//! cargo run --release --example prism_evolution            # paper scale
//! SIOSCOPE_SCALE=smoke cargo run --example prism_evolution # quick look
//! ```

use sioscope::experiments::{prism, run_experiment, Experiment, Scale};
use sioscope::report::render_output;
use sioscope_analysis::Evolution;
use sioscope_pfs::OpKind;
use sioscope_workloads::PrismVersion;

fn main() {
    let scale = match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Full,
    };
    let mut failures = 0;
    for e in [
        Experiment::PrismTable4,
        Experiment::PrismFig6,
        Experiment::PrismTable5,
        Experiment::PrismFig7,
        Experiment::PrismFig8,
        Experiment::PrismFig9,
    ] {
        let out = run_experiment(e, scale);
        print!("{}", render_output(&out));
        failures += out.failures().len();
    }
    // The §5 narrative as deltas.
    let ra = prism::run_version(PrismVersion::A, scale);
    let rb = prism::run_version(PrismVersion::B, scale);
    let rc = prism::run_version(PrismVersion::C, scale);
    let ab = Evolution::between("A", &ra.trace, "B", &rb.trace);
    let bc = Evolution::between("B", &rb.trace, "C", &rc.trace);
    println!("{}", ab.render());
    println!("{}", bc.render());
    if let Some(d) = ab.delta(OpKind::Read) {
        println!(
            "A->B read-time change: {:+.1}s (paper §5.3: \"the total read time decreases by 125 seconds\")",
            d.time_change_s()
        );
    }
    if let Some(d) = bc.delta(OpKind::Read) {
        println!(
            "B->C read-time change: {:+.1}s (paper §5.1: disabling buffering made reads worse)",
            d.time_change_s()
        );
    }

    if failures > 0 && scale == Scale::Full {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
}
