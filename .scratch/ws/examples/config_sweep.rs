//! Machine-configuration sensitivity study — the paper's §7 future
//! work ("examine the effects of different machine configurations,
//! e.g., number of I/O nodes, and different architectures on I/O
//! performance"), run on the reproduced workloads.
//!
//! ```text
//! cargo run --release --example config_sweep
//! ```

use sioscope::sweeps::{disk_bandwidth_sweep, io_node_sweep, stripe_sweep};
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};

fn main() {
    let full = !matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke"));

    let escat = if full {
        EscatConfig::ethylene(EscatVersion::B).build()
    } else {
        EscatConfig::tiny(EscatVersion::B).build()
    };
    let prism = if full {
        PrismConfig::test_problem(PrismVersion::A).build()
    } else {
        PrismConfig::tiny(PrismVersion::A).build()
    };

    println!("== I/O-node scaling (ESCAT B: the all-node staging workload) ==\n");
    let sweep = io_node_sweep(&escat, &[2, 4, 8, 16, 32]);
    println!("{}", sweep.render());
    println!(
        "I/O-time speedup 2 -> best: {:.2}x\n",
        sweep.best_io_speedup()
    );

    println!("== Stripe-unit sensitivity (ESCAT B tuned to 64 KB stripes) ==\n");
    let sweep = stripe_sweep(
        &escat,
        &[16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10],
    );
    println!("{}", sweep.render());
    println!(
        "The 128 KB M_RECORD reloads are stripe-multiples only at <=64 KB units —\n\
         §6.2's point that application tuning is coupled to file-system constants.\n"
    );

    println!("== Disk-generation sweep (PRISM A: open/read-bound) ==\n");
    let sweep = disk_bandwidth_sweep(&prism, &[2, 4, 8, 16, 32]);
    println!("{}", sweep.render());
    println!(
        "Faster arrays barely help version A: its bottleneck is serialized\n\
         metadata and small reads, not transfer bandwidth — the paper's core\n\
         argument for fixing file-system policy rather than buying disks."
    );
}
