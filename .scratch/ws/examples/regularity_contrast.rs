//! The §2 related-work contrast, quantified.
//!
//! Miller & Katz characterized Cray workloads as "highly regular,
//! cyclical, and bursty"; Pasquale & Polyzos found them "recurrent and
//! predictable". The paper's earlier Paragon study [3] found instead
//! "large variations in the temporal and spatial access patterns ...
//! more irregular, with both extremely small and extremely large
//! requests". This example measures both claims on simulated traces:
//! a vector-era cyclical workload vs. the reproduced ESCAT/PRISM runs.
//!
//! ```text
//! cargo run --release --example regularity_contrast
//! ```

use sioscope::simulator::{run, RunResult, SimOptions};
use sioscope_analysis::interarrival::per_process;
use sioscope_analysis::{BandwidthSeries, Cdf};
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::Time;
use sioscope_workloads::synthetic::{cray_cyclical, KernelConfig};
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};

fn execute(w: &Workload) -> RunResult {
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    run(w, cfg, SimOptions::default()).expect("runs")
}

fn row(name: &str, r: &RunResult) {
    let events = r.trace.events();
    let ias = per_process(events);
    let median_cv = {
        let mut cvs: Vec<f64> = ias.values().map(|ia| ia.cv).collect();
        cvs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        cvs.get(cvs.len() / 2).copied().unwrap_or(0.0)
    };
    let bw = BandwidthSeries::build(events, Time::from_secs(10));
    let reads = Cdf::from_samples(r.trace.sizes_of(OpKind::Read));
    let writes = Cdf::from_samples(r.trace.sizes_of(OpKind::Write));
    let span = |c: &Cdf| -> String {
        match (c.quantile(0.0), c.quantile(1.0)) {
            (Some(lo), Some(hi)) if hi > 0 => format!("{lo}..{hi}"),
            _ => "-".into(),
        }
    };
    println!(
        "{name:<18}{median_cv:>10.2}{:>12.1}{:>10.0}%{:>18}{:>18}",
        bw.burstiness(),
        100.0 * bw.duty_cycle(),
        span(&reads),
        span(&writes),
    );
}

fn main() {
    let smoke = matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke"));
    println!(
        "{:<18}{:>10}{:>12}{:>11}{:>18}{:>18}",
        "workload", "iat CV", "burstiness", "duty", "read sizes (B)", "write sizes (B)"
    );
    println!("{}", "-".repeat(87));

    // The vector-era reference: clockwork cycles.
    let mut kcfg = KernelConfig::small();
    kcfg.request = 32 << 10;
    kcfg.total_bytes = 64 << 20;
    let cray = cray_cyclical(&kcfg, 8);
    row("Cray-cyclical", &execute(&cray));

    // The Paragon applications.
    let escat = if smoke {
        EscatConfig::tiny(EscatVersion::A).build()
    } else {
        EscatConfig::ethylene(EscatVersion::A).build()
    };
    row("ESCAT-A", &execute(&escat));
    let prism = if smoke {
        PrismConfig::tiny(PrismVersion::A).build()
    } else {
        PrismConfig::test_problem(PrismVersion::A).build()
    };
    row("PRISM-A", &execute(&prism));

    println!(
        "\nThe cyclical reference shows near-zero interarrival variation within\n\
         its bursts and a single request size; the Paragon codes mix request\n\
         sizes across four-plus orders of magnitude with irregular arrival\n\
         structure — the contrast §2 draws between the vector-era studies\n\
         and the scalable-parallel measurements."
    );
}
