//! Quantify the file-system design principles the paper closes with
//! (§7): request aggregation, prefetching, and write-behind — plus the
//! §5.4 buffering lesson — by running the ablation experiments.
//!
//! ```text
//! cargo run --release --example fs_design_principles
//! ```

use sioscope::experiments::{run_experiment, Experiment, Scale};
use sioscope::report::render_output;

fn main() {
    let scale = match std::env::var("SIOSCOPE_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Full,
    };
    println!(
        "\"Request aggregation, prefetching, and write behind are possible\n\
         approaches\" — §7, Smirni et al., HPDC 1996.\n"
    );
    let mut failures = 0;
    for e in [
        Experiment::AblationAggregation,
        Experiment::AblationWriteBehind,
        Experiment::AblationPrefetch,
        Experiment::AblationCaching,
        Experiment::AblationAdaptive,
    ] {
        let out = run_experiment(e, scale);
        print!("{}", render_output(&out));
        failures += out.failures().len();
    }
    if failures > 0 && scale == Scale::Full {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
}
