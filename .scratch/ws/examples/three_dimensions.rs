//! The §6 characterization: "In each of the three phases, I/O activity
//! can be classified across three dimensions: I/O request size, I/O
//! parallelism, and I/O access modes." This example measures all three
//! for every ESCAT and PRISM version, plus the Miller–Katz class mix
//! and temporal burstiness.
//!
//! ```text
//! cargo run --release --example three_dimensions
//! ```

use sioscope::simulator::{run, RunResult, SimOptions};
use sioscope_analysis::classify::class_totals;
use sioscope_analysis::{
    classify_all, BandwidthSeries, Cdf, ConcurrencyProfile, ModeUsage, NodeBalance,
};
use sioscope_pfs::{OpKind, PfsConfig};
use sioscope_sim::{Pid, Time};
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion};

fn characterize(r: &RunResult) {
    println!("=== {} ===", r.name);
    let events = r.trace.events();

    // Dimension 1: request size.
    let reads = Cdf::from_samples(r.trace.sizes_of(OpKind::Read));
    let writes = Cdf::from_samples(r.trace.sizes_of(OpKind::Write));
    println!(
        "  sizes       : {} reads (median {} B, small<=2K {:.0}%), {} writes (median {} B)",
        reads.n(),
        reads.quantile(0.5).unwrap_or(0),
        100.0 * reads.fraction_leq(2048),
        writes.n(),
        writes.quantile(0.5).unwrap_or(0),
    );

    // Dimension 2: I/O parallelism.
    let conc = ConcurrencyProfile::build(events);
    let bal = NodeBalance::build(events);
    let writes = NodeBalance::build_filtered(events, |e| e.kind == OpKind::Write);
    println!(
        "  parallelism : peak {} concurrent calls, {:.1} mean while active; gini {:.2} over {} nodes",
        conc.peak,
        conc.mean_active,
        bal.gini(),
        bal.active_nodes(),
    );
    println!(
        "  coordinator : node 0 carries {:.0}% of write time (the §6.1 pattern)",
        100.0 * writes.share(Pid(0)),
    );

    // Dimension 3: access modes.
    let modes = ModeUsage::build(events);
    println!(
        "  modes       : {} used; most time in {}, most bytes via {}",
        modes.used_modes().len(),
        modes.dominant_by_time().unwrap_or("-"),
        modes.dominant_by_bytes().unwrap_or("-"),
    );

    // Miller–Katz classes and burstiness.
    let classes = classify_all(events, Time::from_secs(30));
    let totals = class_totals(&classes);
    let mix: Vec<String> = totals
        .iter()
        .map(|(label, (bytes, _))| format!("{label}: {:.1} MB", *bytes as f64 / 1e6))
        .collect();
    let bw = BandwidthSeries::build(events, Time::from_secs(10));
    println!("  classes     : {}", mix.join(", "));
    println!(
        "  temporality : burstiness {:.1} (peak/mean), duty cycle {:.0}%\n",
        bw.burstiness(),
        100.0 * bw.duty_cycle(),
    );
}

fn main() {
    let smoke = matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke"));
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        let w = if smoke {
            EscatConfig::tiny(v).build()
        } else {
            EscatConfig::ethylene(v).build()
        };
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r = run(&w, cfg, SimOptions::default()).expect("runs");
        characterize(&r);
    }
    for v in PrismVersion::all() {
        let w = if smoke {
            PrismConfig::tiny(v).build()
        } else {
            PrismConfig::test_problem(v).build()
        };
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let r = run(&w, cfg, SimOptions::default()).expect("runs");
        characterize(&r);
    }
    println!(
        "The §6.1 -> §6.2 story in numbers: node-zero's share of write time\n\
         collapses from version A to version C as both applications move from\n\
         coordinator-mediated writes to all-node parallel access, while the\n\
         dominant access mode shifts from M_UNIX to the structured modes."
    );
}
