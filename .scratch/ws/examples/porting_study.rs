//! Porting study: run the same ESCAT workloads on models of the three
//! machines in the applications' history — the Intel iPSC/860 and
//! Touchstone Delta (where the codes grew their version-A habits) and
//! the Caltech Paragon XP/S (where the paper measured them).
//!
//! §6.1 observes that the version-A patterns were "partially an
//! artifact of the codes' previous platforms": on the predecessors'
//! file systems, coordinator-mediated I/O was the natural choice. This
//! study quantifies the flip side — how much each machine generation
//! rewards the optimized version-C patterns.
//!
//! ```text
//! cargo run --release --example porting_study
//! ```

use sioscope::simulator::{run, SimOptions};
use sioscope_machine::MachineConfig;
use sioscope_pfs::{PfsConfig, PfsCosts};
use sioscope_workloads::{EscatConfig, EscatVersion, Workload};

fn run_on(workload: &Workload, machine: MachineConfig) -> sioscope::simulator::RunResult {
    let cfg = PfsConfig {
        machine,
        costs: PfsCosts::for_os(sioscope_pfs::mode::OsRelease::Osf13),
        os: workload.os,
        stripe_unit: 64 * 1024,
        policy: Default::default(),
        faults: Default::default(),
        resilience: sioscope_pfs::ResilienceConfig::standard(),
    };
    run(workload, cfg, SimOptions::default()).expect("runs")
}

fn main() {
    let smoke = matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke"));
    let build = |v: EscatVersion| {
        if smoke {
            EscatConfig::tiny(v).build()
        } else {
            EscatConfig::ethylene(v).build()
        }
    };
    let wa = build(EscatVersion::A);
    let wc = build(EscatVersion::C);
    type MachineMaker = fn(u32) -> MachineConfig;
    let machines: [(&str, MachineMaker); 3] = [
        ("iPSC/860", MachineConfig::ipsc860),
        ("Delta", MachineConfig::touchstone_delta),
        ("Paragon", MachineConfig::caltech_paragon),
    ];

    println!("ESCAT total I/O time (s) by machine generation and code version\n");
    println!(
        "{:<12}{:>14}{:>14}{:>12}",
        "machine", "version A", "version C", "C speedup"
    );
    println!("{}", "-".repeat(52));
    for (name, make) in machines {
        let ra = run_on(&wa, make(wa.nodes));
        let rc = run_on(&wc, make(wc.nodes));
        let ta = ra.total_io_time().as_secs_f64();
        let tc = rc.total_io_time().as_secs_f64();
        println!(
            "{name:<12}{ta:>13.1}s{tc:>13.1}s{:>11.2}x",
            if tc > 0.0 { ta / tc } else { f64::INFINITY }
        );
    }
    println!(
        "\nThe optimized patterns pay on every generation, but the paper's point\n\
         stands: the reward grows with the machine's I/O parallelism, and code\n\
         tuned to one generation's idiosyncrasies (version A's coordinator\n\
         pattern was natural on the iPSC/860 and Delta) leaves increasing\n\
         performance behind as the hardware scales (§6.1-§6.2)."
    );
}
