//! Sweep the six PFS access modes against a range of request sizes
//! and print the delivered aggregate read bandwidth — the design-space
//! view behind the paper's §6.2 observation that "PFS achieves high
//! transfer rates for large request sizes that are multiples of the
//! file stripe size [but] the performance for small requests is quite
//! low", and that matching the access pattern to the right mode
//! matters as much as the request size.
//!
//! ```text
//! cargo run --release --example mode_explorer
//! ```

use sioscope::simulator::{run, SimOptions};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp, PfsConfig};
use sioscope_workloads::{FileSpec, Stmt, Workload};

/// Build a workload where `nodes` processes read `total_bytes`
/// (collectively) from a shared file in `size`-byte requests under
/// `mode`.
fn read_workload(nodes: u32, mode: IoMode, size: u64, total_bytes: u64) -> Workload {
    let per_node = total_bytes / u64::from(nodes);
    let reads_per_node = (per_node / size).max(1);
    let programs = (0..nodes)
        .map(|pid| {
            let mut p = Vec::new();
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Gopen {
                    group: nodes,
                    mode,
                    record_size: (mode == IoMode::MRecord).then_some(size),
                },
            });
            if mode.private_pointer() && mode != IoMode::MRecord {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Seek {
                        offset: u64::from(pid) * per_node,
                    },
                });
            }
            for _ in 0..reads_per_node {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p
        })
        .collect();
    Workload {
        name: format!("explore-{mode}-{size}"),
        version: "sweep".into(),
        os: OsRelease::Osf13,
        nodes,
        files: vec![FileSpec {
            name: "data".into(),
            initial_size: total_bytes * 2,
        }],
        programs,
        phases: vec![],
    }
}

fn main() {
    let nodes = 16u32;
    let total = 64u64 << 20; // 64 MB per cell
    let sizes: Vec<u64> = vec![512, 4096, 65_536, 131_072, 1 << 20];

    println!(
        "Delivered aggregate read bandwidth (MB/s), {nodes} nodes reading {} MB total",
        total >> 20
    );
    print!("{:<10}", "mode");
    for s in &sizes {
        print!("{:>10}", humanize(*s));
    }
    println!();
    println!("{}", "-".repeat(10 + 10 * sizes.len()));

    for mode in IoMode::all() {
        print!("{:<10}", mode.name());
        for &size in &sizes {
            // M_RECORD requires the round to tile: skip sizes where a
            // full round exceeds the per-cell volume.
            if mode == IoMode::MRecord && size * u64::from(nodes) > total {
                print!("{:>10}", "-");
                continue;
            }
            let w = read_workload(nodes, mode, size, total);
            let cfg = PfsConfig::caltech(nodes, OsRelease::Osf13);
            match run(&w, cfg, SimOptions::default()) {
                Ok(r) => {
                    let bytes: u64 = w.declared_volume().0;
                    let mbps = bytes as f64 / 1e6 / r.exec_time.as_secs_f64();
                    print!("{mbps:>10.2}");
                }
                Err(e) => {
                    print!("{:>10}", format!("err:{e:.12}"));
                }
            }
        }
        println!();
    }
    println!();
    println!("Notes (cf. §6.2 of the paper):");
    println!(" * every mode improves by orders of magnitude from 512 B to 1 MB requests;");
    println!(" * M_UNIX serializes sharers, M_ASYNC does not — compare their small-request rows;");
    println!(" * M_GLOBAL moves each byte from disk once regardless of the process count;");
    println!(" * M_RECORD at 128 KB (2x the stripe unit) is the configuration ESCAT C tuned to.");
}

fn humanize(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1024 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}
