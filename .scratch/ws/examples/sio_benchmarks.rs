//! The derived parallel-file-system benchmark suite (§7: "From these
//! characterizations, a comprehensive set of parallel file system I/O
//! benchmarks will be derived") — run against the measured PFS and the
//! adaptive-policy PFS.
//!
//! ```text
//! cargo run --release --example sio_benchmarks
//! ```

use sioscope::simulator::{run, SimOptions};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{PfsConfig, PolicyConfig};
use sioscope_workloads::synthetic::{suite, KernelConfig};

fn main() {
    let cfg = if matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke")) {
        KernelConfig::small()
    } else {
        KernelConfig::paper_scale()
    };
    println!(
        "SIO benchmark suite: {} nodes, {} KB requests, {} MB per kernel\n",
        cfg.nodes,
        cfg.request >> 10,
        cfg.total_bytes >> 20
    );
    println!(
        "{:<20}{:>14}{:>14}{:>16}{:>14}",
        "kernel", "exec (s)", "I/O time (s)", "agg. MB/s", "adaptive MB/s"
    );
    println!("{}", "-".repeat(78));

    for w in suite(&cfg) {
        let (rd, wr) = w.declared_volume();
        let bytes = rd + wr;
        let base_cfg = PfsConfig::caltech(w.nodes, OsRelease::Osf13);
        let base = run(&w, base_cfg, SimOptions::default()).expect("kernel runs");
        let mut adaptive_cfg = PfsConfig::caltech(w.nodes, OsRelease::Osf13);
        adaptive_cfg.policy = PolicyConfig::adaptive();
        let adaptive = run(&w, adaptive_cfg, SimOptions::default()).expect("kernel runs");
        let bw = |t: sioscope_sim::Time| bytes as f64 / 1e6 / t.as_secs_f64();
        println!(
            "{:<20}{:>14.2}{:>14.2}{:>16.2}{:>14.2}",
            w.name.trim_start_matches("synthetic/"),
            base.exec_time.as_secs_f64(),
            base.total_io_time().as_secs_f64(),
            bw(base.exec_time),
            bw(adaptive.exec_time),
        );
    }
    println!(
        "\nKernels distill the ESCAT/PRISM access patterns; 'adaptive' applies\n\
         the §5.4 PPFS-style policy detector to the same request streams."
    );
}
