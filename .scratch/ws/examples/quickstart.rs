//! Quickstart: build a small workload by hand, run it on a simulated
//! Paragon, and inspect the Pablo-style trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sioscope::simulator::{run, SimOptions};
use sioscope_analysis::table::{render_io_table, IoTimeTable};
use sioscope_pfs::mode::OsRelease;
use sioscope_pfs::{IoMode, IoOp, PfsConfig};
use sioscope_sim::Time;
use sioscope_trace::LifetimeSummary;
use sioscope_workloads::{FileSpec, Stmt, Workload};

fn main() {
    // Four nodes: everyone reads a shared input file under M_UNIX
    // (serialized — the paper's version-A pattern), then all nodes
    // write disjoint slices of a result file under M_ASYNC (the
    // version-C pattern).
    let nodes = 4u32;
    let slice = 256 * 1024u64;
    let programs = (0..nodes)
        .map(|pid| {
            let mut p = vec![Stmt::Io {
                file: 0,
                op: IoOp::Open,
            }];
            for _ in 0..32 {
                p.push(Stmt::Io {
                    file: 0,
                    op: IoOp::Read { size: 1024 },
                });
            }
            p.push(Stmt::Io {
                file: 0,
                op: IoOp::Close,
            });
            p.push(Stmt::Compute(Time::from_secs(2)));
            p.push(Stmt::Io {
                file: 1,
                op: IoOp::Gopen {
                    group: nodes,
                    mode: IoMode::MAsync,
                    record_size: None,
                },
            });
            p.push(Stmt::Io {
                file: 1,
                op: IoOp::Seek {
                    offset: u64::from(pid) * slice,
                },
            });
            for _ in 0..4 {
                p.push(Stmt::Io {
                    file: 1,
                    op: IoOp::Write { size: slice / 4 },
                });
            }
            p.push(Stmt::Io {
                file: 1,
                op: IoOp::Close,
            });
            p
        })
        .collect();

    let workload = Workload {
        name: "quickstart".into(),
        version: "demo".into(),
        os: OsRelease::Osf13,
        nodes,
        files: vec![
            FileSpec {
                name: "input".into(),
                initial_size: 1 << 20,
            },
            FileSpec {
                name: "output".into(),
                initial_size: 0,
            },
        ],
        programs,
        phases: vec![],
    };

    let pfs = PfsConfig::caltech(nodes, OsRelease::Osf13);
    let result = run(&workload, pfs, SimOptions::default()).expect("workload runs");

    println!("execution time : {}", result.exec_time);
    println!("events         : {}", result.events);
    println!("I/O operations : {}", result.trace.len());
    println!("total I/O time : {}", result.trace.total_io_time());
    println!();

    let table = IoTimeTable::from_durations("demo", &result.trace.duration_by_kind());
    println!(
        "{}",
        render_io_table("Share of I/O time by operation:", &[table])
    );

    for file_idx in [0u32, 1] {
        let summary = LifetimeSummary::build(result.trace.events(), sioscope_sim::FileId(file_idx));
        println!(
            "file {}: {} bytes accessed, open span {:?}",
            workload.files[file_idx as usize].name,
            summary.bytes_accessed(),
            summary.open_span().map(|t| t.to_string()),
        );
    }
}
