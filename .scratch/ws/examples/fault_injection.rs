//! Fault injection and resilience — the paper's workloads on a
//! machine that misbehaves.
//!
//! The original study measured a healthy Caltech Paragon; §7 asks how
//! different machine configurations change the I/O picture. This
//! example runs PRISM B against each fault class (latent sector
//! errors, a RAID-3 spindle failure with rebuild, an I/O-node crash,
//! an I/O-node slowdown, mesh-link congestion) and then sweeps fault
//! intensity with seed-reproducible generated schedules.
//!
//! ```text
//! cargo run --release --example fault_injection
//! SIOSCOPE_SCALE=smoke cargo run --example fault_injection
//! ```

use sioscope::experiments::{run_experiment, Experiment, Scale};
use sioscope::sweeps::fault_intensity_sweep;
use sioscope_workloads::{PrismConfig, PrismVersion};

fn main() {
    let smoke = matches!(std::env::var("SIOSCOPE_SCALE").as_deref(), Ok("smoke"));
    let scale = if smoke { Scale::Smoke } else { Scale::Full };

    println!("== One run per fault class ==\n");
    for e in [Experiment::ResilienceEscat, Experiment::ResiliencePrism] {
        let out = run_experiment(e, scale);
        println!("{}", out.rendered);
        for c in &out.checks {
            println!("  [{}] {}", if c.pass { "ok" } else { "FAIL" }, c.name);
        }
        println!();
    }

    println!("== Fault-intensity sweep (PRISM B, seed-reproducible) ==\n");
    let prism = if smoke {
        PrismConfig::tiny(PrismVersion::B).build()
    } else {
        PrismConfig::test_problem(PrismVersion::B).build()
    };
    let sweep = fault_intensity_sweep(&prism, &[0, 1, 2, 4, 8], 0xF417);
    println!("{}", sweep.render());
    println!(
        "Schedules are nested by construction — intensity k is a prefix of\n\
         k+1 — so execution time inflates monotonically with fault count,\n\
         and the same seed replays the same faults bit-for-bit."
    );
}
