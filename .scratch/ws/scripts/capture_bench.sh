#!/usr/bin/env sh
# Capture the Criterion results into a numbered baseline file.
#
#   scripts/capture_bench.sh BENCH_1.json
#   scripts/capture_bench.sh BENCH_1.json --compare BENCH_0.json
#
# Runs the bench suite, then collates target/criterion into the named
# BENCH_<n>.json via the bench_baseline binary. One `--bench hotpath`
# run produces all three baseline groups — `hotpath` (simulator),
# `analysis` (trace analytics engine), and `sched` (partition
# allocator churn plus the multi-job contention schedule); the
# collated document uses the multi-group sioscope-bench-baseline/2
# schema. Extra arguments are
# passed through (e.g. --compare OLD --bench full_registry_cold
# --min-speedup 1.5 to enforce the perf bar).
set -eu

out="${1:?usage: scripts/capture_bench.sh BENCH_<n>.json [bench_baseline args...]}"
shift

cargo bench -p sioscope-bench --bench hotpath
cargo run -p sioscope-bench --bin bench_baseline -- --out "$out" "$@"
