//! Offline stand-in for `rand` 0.8: the exact API surface the
//! workspace touches (`SmallRng::seed_from_u64`, `gen`, `gen_range`),
//! backed by xoshiro256++ with a SplitMix64 seeder. Deterministic,
//! not the upstream stream.

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut z = state;
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types drawable uniformly with `Rng::gen`.
pub trait Standard: Sized {
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                let n = span as u64 + 1;
                lo.wrapping_add((rng.next_u64() % n) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                SampleRange::sample(self.start..=self.end - 1, rng)
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore + Sized {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}
