//! Offline stand-in for `bytes`: Vec-backed `Bytes`/`BytesMut` with
//! the little-endian get/put surface the trace codec uses.

use std::ops::Deref;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}
