//! Offline stand-in for `criterion`: same API surface the workspace
//! bench targets use, with real wall-clock measurement. Each bench is
//! warmed up, then sampled; mean/median per-iteration times are written
//! to `target/criterion/<group>/<bench>/new/estimates.json` in the same
//! shape the real criterion emits (the subset `collect_estimates`
//! reads: `mean.point_estimate` / `median.point_estimate`, in ns).

use std::path::PathBuf;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn criterion_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("criterion");
    }
    // Bench executables live in <target>/<profile>/deps/<name>-<hash>.
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(|t| t.join("criterion"))
        .expect("target dir from exe path")
}

/// Collected per-iteration samples (ns) for one bench body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Warm up, then sample `routine`. Slow bodies get one iteration
    /// per sample; fast bodies are batched so each sample spans at
    /// least ~2ms of wall clock. Total budget is bounded so heavy
    /// end-to-end benches still finish in seconds.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + pilot measurement.
        let t = Instant::now();
        std::hint::black_box(routine());
        let pilot = t.elapsed().as_nanos().max(1) as f64;

        let (iters_per_sample, samples) = if pilot > 50_000_000.0 {
            // >50ms per iter: few single-iteration samples.
            (1u64, self.sample_size.min(10).max(3))
        } else if pilot > 2_000_000.0 {
            (1u64, self.sample_size.min(20).max(5))
        } else {
            let per = (2_000_000.0 / pilot).ceil() as u64;
            (per.max(1), self.sample_size.min(30).max(10))
        };

        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn write_estimates(group: &str, bench: &str, samples: &[f64]) {
    if samples.is_empty() {
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    };
    let dir = criterion_dir().join(group).join(bench).join("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let body = format!(
        "{{\"mean\":{{\"point_estimate\":{mean}}},\"median\":{{\"point_estimate\":{median}}}}}"
    );
    let _ = std::fs::write(dir.join("estimates.json"), body);
    eprintln!("bench {group}/{bench}: mean {:.3} ms over {} samples", mean / 1e6, samples.len());
}

pub struct Criterion;

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

impl Criterion {
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: 100 };
        f(&mut b);
        write_estimates(id, id, &b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size: 100 }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        write_estimates(&self.name, id, &b.samples);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
