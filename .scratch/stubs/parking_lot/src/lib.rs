//! Offline stand-in for `parking_lot`: a std mutex without poisoning.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
