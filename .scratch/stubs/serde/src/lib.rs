//! Offline stand-in for `serde`: re-exports the no-op derives.

pub use serde_derive::{Deserialize, Serialize};
