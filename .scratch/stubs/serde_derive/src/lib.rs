//! No-op `serde` derives: accept the `#[serde(...)]` helper attribute
//! and emit nothing. Types "derive" Serialize/Deserialize without
//! gaining any impls; the serde_json stub is unbounded, so code that
//! serializes still compiles and fails at runtime instead.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
