//! Offline stand-in for `rayon`: the parallel-iterator entry points
//! the workspace uses, executed sequentially. `par_iter` and
//! `into_par_iter` hand back ordinary std iterators, so every
//! downstream `map`/`collect` chain keeps working; `par_sort_by_key`
//! is std's stable sort (same ordering contract as rayon's).

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_by_key(f);
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

pub fn current_num_threads() -> usize {
    1
}
