//! Offline mini-`proptest`: randomized testing with the same surface
//! the workspace uses (strategies, `proptest!`, `prop_oneof!`,
//! `prop_assert*`), but no shrinking — a failing case panics with the
//! generated inputs in the assert message instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Object-safe core (`sample`), with the
    /// combinators the workspace uses provided on `Sized` receivers.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// `Just(v)` — the constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.base.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence)
        }
    }

    /// `prop_oneof!` target: weighted union of boxed alternatives.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union {
                arms: arms.into_iter().map(|s| (1, s)).collect(),
            }
        }

        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(arms.iter().any(|(w, _)| *w > 0), "all-zero weights");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.next_u64() % total;
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!()
        }
    }

    macro_rules! int_strategies {
        ($($t:ty => $from:ident),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.$from(self.start as i128, self.end as i128 - 1)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.$from(*self.start() as i128, *self.end() as i128)
                }
            }
        )*};
    }
    int_strategies!(
        u8 => int_u8, u16 => int_u16, u32 => int_u32, u64 => int_u64,
        usize => int_usize, i8 => int_i8, i16 => int_i16, i32 => int_i32,
        i64 => int_i64, isize => int_isize
    );

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!(
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    );
}

pub mod test_runner {
    /// Runner configuration; only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic xorshift64* generator; every `proptest!` test
    /// starts from the same fixed seed, so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[lo, hi]` (inclusive), computed in i128 so one
        /// implementation covers every primitive integer width.
        fn int_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128;
            if span == u128::MAX {
                return self.next_u64() as i128;
            }
            let n = span + 1;
            let draw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            lo + (draw % n) as i128
        }
    }

    macro_rules! int_draws {
        ($($name:ident => $t:ty),*) => {$(
            impl TestRng {
                pub fn $name(&mut self, lo: i128, hi: i128) -> $t {
                    self.int_i128(lo, hi) as $t
                }
            }
        )*};
    }
    int_draws!(
        int_u8 => u8, int_u16 => u16, int_u32 => u32, int_u64 => u64,
        int_usize => usize, int_i8 => i8, int_i16 => i16, int_i32 => i32,
        int_i64 => i64, int_isize => isize
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker for `any::<T>()`.
    pub struct Any<T> {
        _t: std::marker::PhantomData<T>,
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any {
            _t: std::marker::PhantomData,
        }
    }

    pub trait ArbitraryValue {
        fn draw(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw(rng)
        }
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn draw(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn draw(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn draw(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bound for `vec`/`subsequence`, converted from a
    /// range or an exact count.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_usize(self.size.lo as i128, self.size.hi as i128);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of nothing");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.int_usize(0, self.options.len() as i128 - 1)].clone()
        }
    }

    pub struct Subsequence<T> {
        options: Vec<T>,
        size: SizeRange,
    }

    /// A random subsequence of `options` with length in `size`,
    /// preserving the original relative order.
    pub fn subsequence<T: Clone>(options: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        let size = size.into();
        assert!(
            size.hi <= options.len(),
            "subsequence longer than the source"
        );
        Subsequence { options, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let k = rng.int_usize(self.size.lo as i128, self.size.hi as i128);
            let n = self.options.len();
            // Floyd's algorithm for k distinct indices, then sort to
            // keep the subsequence order.
            let mut picked = std::collections::BTreeSet::new();
            for j in n - k..n {
                let t = rng.int_usize(0, j as i128);
                if !picked.insert(t) {
                    picked.insert(j);
                }
            }
            picked.into_iter().map(|i| self.options[i].clone()).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    () => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}
