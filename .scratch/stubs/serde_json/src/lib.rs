//! Offline stand-in for `serde_json`. Every serialize/deserialize
//! entry point compiles against any type (no `Serialize` bound) and
//! returns `Err` at runtime, so code paths that actually need JSON
//! fail loudly instead of producing wrong bytes. The `Value`/`Map`
//! types exist so builders and accessors type-check.

use std::collections::BTreeMap;

pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub: JSON (de)serialization unavailable offline")
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// `Value` round-trips for real (the bench baseline tooling depends on
/// it); every other type still fails loudly at runtime.
pub fn to_string<T: 'static>(value: &T) -> Result<String> {
    match (value as &dyn std::any::Any).downcast_ref::<Value>() {
        Some(v) => Ok(render(v, None, 0)),
        None => Err(Error),
    }
}

pub fn to_string_pretty<T: 'static>(value: &T) -> Result<String> {
    match (value as &dyn std::any::Any).downcast_ref::<Value>() {
        Some(v) => Ok(render(v, Some(2), 0)),
        None => Err(Error),
    }
}

pub fn from_str<T: 'static>(s: &str) -> Result<T> {
    let parsed = parse(s)?;
    let mut slot = Some(parsed);
    match (&mut slot as &mut dyn std::any::Any).downcast_mut::<Option<T>>() {
        Some(typed) => Ok(typed.take().expect("just filled")),
        None => Err(Error),
    }
}

/// serde_json prints integral floats with a trailing `.0` (ryu); match
/// that so stub-rendered baselines are byte-compatible with real ones.
fn render_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 1e16 {
        format!("{n:.1}")
    } else {
        format!("{n}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, indent: Option<usize>, depth: usize) -> String {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => render_number(*n),
        Value::String(s) => {
            let mut out = String::new();
            render_string(s, &mut out);
            out
        }
        Value::Array(a) if a.is_empty() => "[]".to_string(),
        Value::Array(a) => {
            let items: Vec<String> = a
                .iter()
                .map(|e| format!("{pad_in}{}", render(e, indent, depth + 1)))
                .collect();
            format!("[{nl}{}{nl}{pad}]", items.join(&format!(",{nl}")))
        }
        Value::Object(m) if m.is_empty() => "{}".to_string(),
        Value::Object(m) => {
            let items: Vec<String> = m
                .iter()
                .map(|(k, e)| {
                    let mut out = pad_in.clone();
                    render_string(k, &mut out);
                    out.push_str(colon);
                    out.push_str(&render(e, indent, depth + 1));
                    out
                })
                .collect();
            format!("{{{nl}{}{nl}{pad}}}", items.join(&format!(",{nl}")))
        }
    }
}

fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(v)
    } else {
        Err(Error)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or(Error)
        }
        None => Err(Error),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error);
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return String::from_utf8(out).map_err(|_| Error),
            b'\\' => {
                let esc = *b.get(*pos).ok_or(Error)?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or(Error)?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error)?,
                            16,
                        )
                        .map_err(|_| Error)?;
                        let ch = char::from_u32(code).ok_or(Error)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(Error),
                }
            }
            c => out.push(c),
        }
    }
    Err(Error)
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}
impl<T: Copy + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        (*v).into()
    }
}

/// By-reference conversion for `json!`, mirroring how the real macro
/// serializes expression values without consuming them.
pub trait ToValue {
    fn to_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToValue for T {
    fn to_value(&self) -> Value {
        self.clone().into()
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// Builds real `Value`s for the shapes the workspace uses: flat objects
/// with string-literal keys and expression values, arrays of
/// expressions, and bare expressions (anything with `Into<Value>`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(($key).to_string(), $crate::ToValue::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToValue::to_value(&$elem)),* ])
    };
    ($other:expr) => { $crate::ToValue::to_value(&$other) };
}
