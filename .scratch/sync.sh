#!/bin/bash
# Sync the real repo into the stub workspace and patch deps to local stubs.
set -e
cd /root/repo
rm -rf .scratch/ws/crates .scratch/ws/src .scratch/ws/tests .scratch/ws/examples .scratch/ws/Cargo.toml .scratch/ws/scripts
mkdir -p .scratch/ws
cp -r Cargo.toml crates src tests examples scripts .scratch/ws/
cd .scratch/ws
python3 - <<'EOF'
import re
t = open("Cargo.toml").read()
for name in ["rand","proptest","criterion","parking_lot","bytes","serde_derive","serde_json","serde","rayon"]:
    t = re.sub(rf'^{name} = .*$', f'{name} = {{ path = "../stubs/{name}" }}', t, flags=re.M)
open("Cargo.toml","w").write(t)
EOF
