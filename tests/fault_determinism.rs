//! Determinism guarantees of the fault-injection subsystem.
//!
//! Two invariants protect the reproduction results:
//!
//! 1. an *empty* fault schedule must be invisible — even when it is
//!    forced to engage the fault hooks, every run artifact must be
//!    byte-identical to a plain run;
//! 2. a *non-empty* schedule must replay exactly: the same seed and
//!    intensity produce identical execution times, traces and
//!    resilience counters on every run.

use proptest::prelude::*;
use sioscope::simulator::{run, RunResult, SimOptions};
use sioscope_faults::{FaultGen, FaultSchedule};
use sioscope_pfs::PfsConfig;
use sioscope_sim::Time;
use sioscope_workloads::{EscatConfig, EscatVersion, PrismConfig, PrismVersion, Workload};

fn run_with(workload: &Workload, faults: FaultSchedule) -> RunResult {
    let mut cfg = PfsConfig::caltech(workload.nodes, workload.os);
    cfg.faults = faults;
    run(workload, cfg, SimOptions::default()).expect("runs")
}

fn assert_bit_identical(plain: &RunResult, engaged: &RunResult) {
    assert_eq!(plain.exec_time, engaged.exec_time, "{}", plain.name);
    assert_eq!(plain.node_finish, engaged.node_finish, "{}", plain.name);
    assert_eq!(plain.events, engaged.events, "{}", plain.name);
    assert_eq!(
        plain.trace.events(),
        engaged.trace.events(),
        "{}",
        plain.name
    );
    assert_eq!(engaged.fault_transitions, 0, "{}", plain.name);
    assert!(
        engaged.resilience.is_quiet(),
        "{}: {:?}",
        plain.name,
        engaged.resilience
    );
}

#[test]
fn engaged_empty_schedule_is_invisible_for_escat() {
    for v in [EscatVersion::A, EscatVersion::B, EscatVersion::C] {
        let w = EscatConfig::tiny(v).build();
        let plain = run_with(&w, FaultSchedule::empty());
        let engaged = run_with(&w, FaultSchedule::engaged_empty());
        assert_bit_identical(&plain, &engaged);
    }
}

#[test]
fn engaged_empty_schedule_is_invisible_for_prism() {
    for v in [PrismVersion::A, PrismVersion::B, PrismVersion::C] {
        let w = PrismConfig::tiny(v).build();
        let plain = run_with(&w, FaultSchedule::empty());
        let engaged = run_with(&w, FaultSchedule::engaged_empty());
        assert_bit_identical(&plain, &engaged);
    }
}

#[test]
fn faulty_runs_replay_exactly() {
    let w = PrismConfig::tiny(PrismVersion::B).build();
    let cfg = PfsConfig::caltech(w.nodes, w.os);
    let faults = FaultGen::new(0xD0_0DAD, Time::from_secs(30), cfg.machine.io_nodes)
        .with_events(6)
        .schedule();
    let a = run_with(&w, faults.clone());
    let b = run_with(&w, faults);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_transitions, b.fault_transitions);
    assert_eq!(a.resilience, b.resilience);
    assert_eq!(a.trace.events(), b.trace.events());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + intensity → identical resilience counters and run
    /// artifacts, for any generated schedule.
    #[test]
    fn same_seed_replay_has_identical_retry_and_abort_counters(
        seed in any::<u64>(),
        intensity in 0usize..8,
    ) {
        let w = EscatConfig::tiny(EscatVersion::B).build();
        let cfg = PfsConfig::caltech(w.nodes, w.os);
        let faults = FaultGen::new(seed, Time::from_secs(20), cfg.machine.io_nodes)
            .with_events(intensity)
            .schedule();
        let a = run_with(&w, faults.clone());
        let b = run_with(&w, faults);
        prop_assert_eq!(a.resilience.retries, b.resilience.retries);
        prop_assert_eq!(a.resilience.aborts, b.resilience.aborts);
        prop_assert_eq!(a.resilience, b.resilience);
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.fault_transitions, b.fault_transitions);
    }
}
